// Multisocket: the paper's dual-socket slab decomposition (§IV-B) on the
// simulated NUMA system, with the per-stage interconnect traffic report that
// reproduces Fig. 8's data-movement claims: stage 1 never crosses the
// QPI/HT link; stages 2 and 3 each send half their writes across (sk=2).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cvec"
	"repro/internal/fft1d"
	"repro/internal/fft3d"
)

func main() {
	const k, n, m = 64, 64, 64
	const sockets = 2

	dp, err := fft3d.NewDistPlan(k, n, m, sockets, fft3d.Options{
		DataWorkers: 1, ComputeWorkers: 1, BufferElems: 1 << 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate slab-partitioned input/output: socket s owns the z-range
	// [s·k/2, (s+1)·k/2), exactly like the paper's libnuma partitioning.
	src, err := dp.Alloc()
	if err != nil {
		log.Fatal(err)
	}
	dst, err := dp.Alloc()
	if err != nil {
		log.Fatal(err)
	}
	x := cvec.Random(rand.New(rand.NewSource(3)), k*n*m)
	src.Scatter(x)

	if err := dp.Transform(dst, src, fft1d.Forward); err != nil {
		log.Fatal(err)
	}

	// Verify against the single-node reference.
	ref, _ := fft3d.NewPlan(k, n, m, fft3d.Options{Strategy: fft3d.Reference})
	want := make([]complex128, k*n*m)
	if err := ref.Transform(want, x, fft1d.Forward); err != nil {
		log.Fatal(err)
	}
	got := make([]complex128, k*n*m)
	dst.Gather(got)
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > 1e-8 {
		log.Fatalf("distributed transform wrong: max diff %g", d)
	}

	fmt.Printf("distributed 3D FFT %d×%d×%d over %d sockets — correct\n\n", k, n, m, sockets)
	fmt.Println("per-stage write traffic (Fig. 8 / Table III):")
	totalBytes := int64(k * n * m * 16)
	for st, tr := range dp.StageTraffic {
		frac := float64(tr.CrossBytes) / float64(tr.LocalBytes+tr.CrossBytes)
		fmt.Printf("  stage %d: local %8d B, cross-link %8d B (%.0f%% crossed)\n",
			st+1, tr.LocalBytes, tr.CrossBytes, frac*100)
		if tr.LocalBytes+tr.CrossBytes != totalBytes {
			log.Fatalf("stage %d did not write every element exactly once", st+1)
		}
	}
	if dp.StageTraffic[0].CrossBytes != 0 {
		log.Fatal("stage 1 must stay within its NUMA domain")
	}
	fmt.Println("\nstage 1 fully local; stages 2 and 3 cross for the remote half — as in the paper")
	fmt.Println("OK")
}
