package repro

// Cross-module integration tests: each test exercises several subsystems
// end to end, the way the example programs and a downstream user would.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cvec"
	"repro/internal/fft1d"
	"repro/internal/fft3d"
	"repro/internal/spl"
	"repro/internal/trace"
	"repro/internal/tune"
)

// The full chain: SPL formula semantics → public doublebuf plan. The SPL
// interpreter is itself verified against the dense DFT, so this pins the
// production path to the mathematical definition end to end.
func TestIntegrationPublicPlanMatchesSPL(t *testing.T) {
	const k, n, m = 4, 8, 8
	x := cvec.Random(rand.New(rand.NewSource(1)), k*n*m)
	want := spl.Eval(spl.DFT3D(k, n, m), x)
	p, err := NewFFT3D(k, n, m, WithBufferElems(64), WithWorkers(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, len(x))
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > 1e-9*float64(k*n*m) {
		t.Fatalf("public plan diverges from SPL semantics: %g", d)
	}
}

// Spectral differentiation: d/dx of a trigonometric polynomial computed
// via forward transform, ik multiply, inverse transform.
func TestIntegrationSpectralDerivative(t *testing.T) {
	const n = 128
	p, err := NewFFT1D(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	dx := make([]complex128, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / n
		x[i] = complex(math.Sin(3*th)+0.5*math.Cos(7*th), 0)
		dx[i] = complex(3*math.Cos(3*th)-3.5*math.Sin(7*th), 0)
	}
	spec := make([]complex128, n)
	if err := p.Forward(spec, x); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		kk := k
		if k > n/2 {
			kk = k - n
		}
		spec[k] *= complex(0, float64(kk))
	}
	got := make([]complex128, n)
	if err := p.Inverse(got, spec); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(dx)); d > 1e-9 {
		t.Fatalf("spectral derivative off by %g", d)
	}
}

// FFT-based convolution against the direct O(N²) computation, through the
// public 2D plan.
func TestIntegration2DConvolution(t *testing.T) {
	const n, m = 16, 16
	rng := rand.New(rand.NewSource(2))
	a := cvec.Random(rng, n*m)
	b := cvec.Random(rng, n*m)
	// Direct circular 2D convolution.
	want := make([]complex128, n*m)
	for y := 0; y < n; y++ {
		for x := 0; x < m; x++ {
			var s complex128
			for v := 0; v < n; v++ {
				for u := 0; u < m; u++ {
					s += a[v*m+u] * b[((y-v+n)%n)*m+(x-u+m)%m]
				}
			}
			want[y*m+x] = s
		}
	}
	p, err := NewFFT2D(n, m, WithBufferElems(64))
	if err != nil {
		t.Fatal(err)
	}
	fa := make([]complex128, n*m)
	fb := make([]complex128, n*m)
	if err := p.Forward(fa, a); err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(fb, b); err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	got := make([]complex128, n*m)
	if err := p.Inverse(got, fa); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > 1e-7*float64(n*m) {
		t.Fatalf("convolution theorem chain off by %g", d)
	}
}

// Tune → wisdom → rebuild with the tuned candidate, verifying the tuned
// plan still computes the right answer.
func TestIntegrationTuneAndReplay(t *testing.T) {
	const k, n, m = 16, 16, 16
	space := tune.Space{
		Buffers:      []int{256, 1024},
		WorkerSplits: [][2]int{{1, 1}},
		Mus:          []int{4},
		SplitFormats: []bool{false, true},
	}
	best, _, err := tune.Tune3D(k, n, m, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewFFT3D(k, n, m,
		WithBufferElems(best.BufferElems),
		WithWorkers(best.DataWorkers, best.ComputeWorkers),
		WithCacheline(best.Mu),
		WithSplitFormat(best.SplitFormat))
	if err != nil {
		t.Fatal(err)
	}
	x := cvec.Random(rand.New(rand.NewSource(3)), k*n*m)
	got := make([]complex128, len(x))
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewFFT3D(k, n, m, WithStrategy("reference"))
	want := make([]complex128, len(x))
	if err := ref.Forward(want, x); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > 1e-8 {
		t.Fatalf("tuned plan wrong: %g", d)
	}
}

// The full 3D transform under a tracer: the three stages execute as one
// fused stage graph — every event lands on the global fused schedule, the
// last store of each stage shares a step with the first load of the next
// (on the opposite buffer half role: store drains half h while the load
// fills the same half after the data barrier), and the whole transform
// drains the pipeline exactly once, not once per stage.
func TestIntegrationFullTransformScheduleInvariants(t *testing.T) {
	tr := trace.New()
	p, err := fft3d.NewPlan(8, 8, 16, fft3d.Options{
		Strategy: fft3d.DoubleBuf, Mu: 4, BufferElems: 128,
		DataWorkers: 2, ComputeWorkers: 2, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := cvec.Random(rand.New(rand.NewSource(4)), p.Len())
	y := make([]complex128, p.Len())
	if err := p.Transform(y, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	// For 8×8×16 with μ=4 and b=128: the pipeline-depth floor trims the
	// capacity-sized blocks (8 pencils / 4 units) to 4 pencils and 2 units,
	// so stage 1 streams its 64 pencils and stages 2–3 their 32 units in 16
	// iterations each.
	iters := []int{16, 16, 16}
	if err := tr.CheckStageGraph(iters, true); err != nil {
		t.Fatal(err)
	}
	// Fused boundaries: store(stage s, last iter) and load(stage s+1, 0)
	// share a pipeline step.
	step := func(stage, iter int, op trace.Op) int {
		for _, e := range tr.Events() {
			if e.Stage == stage && e.Iter == iter && e.Op == op {
				return e.Step
			}
		}
		t.Fatalf("no event stage=%d iter=%d op=%v", stage, iter, op)
		return -1
	}
	for s := 0; s < len(iters)-1; s++ {
		if st, ld := step(s, iters[s]-1, trace.Store), step(s+1, 0, trace.Load); st != ld {
			t.Fatalf("boundary %d→%d not fused: last store at step %d, first load at step %d", s, s+1, st, ld)
		}
	}
	// One drain for the whole transform, not one per stage.
	if d := tr.DrainCount(); d != 1 {
		t.Fatalf("fused 3-stage transform drained %d times, want 1", d)
	}
	if f := tr.OverlapFraction(); f <= 0 {
		t.Fatal("no overlap recorded across the full transform")
	}
}
