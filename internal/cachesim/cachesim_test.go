package cachesim

import (
	"testing"

	"repro/internal/machine"
)

// tiny returns a small two-level hierarchy: 1 KiB 2-way L1, 4 KiB 4-way L2,
// 64 B lines.
func tiny(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := New(
		LevelSpec{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64},
		LevelSpec{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny(t)
	h.Access(0, 8, Read)
	if s := h.Stats(0); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("first access: %+v", s)
	}
	if h.DRAMReadBytes != 64 {
		t.Fatalf("DRAM read %d, want one line (64)", h.DRAMReadBytes)
	}
	h.Access(8, 8, Read) // same line
	if s := h.Stats(0); s.Hits != 1 {
		t.Fatalf("second access should hit L1: %+v", s)
	}
	if h.DRAMReadBytes != 64 {
		t.Fatal("hit should not add DRAM traffic")
	}
}

func TestAccessSpanningLines(t *testing.T) {
	h := tiny(t)
	h.Access(60, 8, Read) // crosses a 64 B boundary
	if s := h.Stats(0); s.Misses != 2 {
		t.Fatalf("expected 2 line misses, got %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	h := tiny(t)
	// L1: 8 sets × 2 ways. Three lines mapping to set 0: addresses
	// 0, 8·64, 16·64.
	setStride := uint64(8 * 64)
	h.Access(0, 8, Read)
	h.Access(setStride, 8, Read)
	h.Access(2*setStride, 8, Read) // evicts line 0 from L1
	if s := h.Stats(0); s.Evictions != 1 {
		t.Fatalf("expected 1 L1 eviction, got %+v", s)
	}
	// Line 0 should still hit in L2.
	h.Access(0, 8, Read)
	if s := h.Stats(1); s.Hits != 1 {
		t.Fatalf("expected L2 hit for evicted line, got %+v", s)
	}
}

func TestDirtyWritebackReachesDRAM(t *testing.T) {
	// Single-level cache: dirty evictions must become DRAM writes.
	h, err := New(LevelSpec{Name: "L1", SizeBytes: 128, Ways: 1, LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 8, Write) // set 0, dirty
	// 2 sets → set 0 also holds address 128.
	h.Access(128, 8, Write) // evicts dirty line 0
	if h.DRAMWriteBytes != 64 {
		t.Fatalf("DRAM writes %d, want 64 (one dirty eviction)", h.DRAMWriteBytes)
	}
	h.Flush()
	if h.DRAMWriteBytes != 128 {
		t.Fatalf("after flush DRAM writes %d, want 128", h.DRAMWriteBytes)
	}
}

func TestWriteAllocateReadsLine(t *testing.T) {
	h := tiny(t)
	h.Access(0, 8, Write)
	if h.DRAMReadBytes != 64 {
		t.Fatalf("write-allocate should read the line: %d", h.DRAMReadBytes)
	}
}

func TestNonTemporalReadBypasses(t *testing.T) {
	h := tiny(t)
	h.Access(0, 8, ReadNT)
	h.Access(8, 8, ReadNT)
	// The second sub-line access combines in the fill buffer: one line.
	if h.DRAMReadBytes != 64 {
		t.Fatalf("NT fill buffer should combine sub-line reads: DRAM %d", h.DRAMReadBytes)
	}
	// Stream far enough to drain the fill buffer, then re-read line 0:
	// nothing was cached, so it costs DRAM again.
	for i := 1; i <= 32; i++ {
		h.Access(uint64(i*64), 8, ReadNT)
	}
	before := h.DRAMReadBytes
	h.Access(0, 8, ReadNT)
	if h.DRAMReadBytes != before+64 {
		t.Fatalf("NT reads must not fill caches: DRAM %d, want %d", h.DRAMReadBytes, before+64)
	}
	// But an NT read hitting cached data is served from cache.
	h.Access(4096, 8, Read)
	before = h.DRAMReadBytes
	h.Access(4096, 8, ReadNT)
	if h.DRAMReadBytes != before {
		t.Fatal("NT read of cached line should be served from cache")
	}
}

func TestNonTemporalWriteInvalidatesAndSkipsCache(t *testing.T) {
	h := tiny(t)
	h.Access(0, 8, Write) // cached dirty
	h.Access(0, 64, WriteNT)
	if h.DRAMWriteBytes != 64 {
		t.Fatalf("NT write bytes %d, want 64", h.DRAMWriteBytes)
	}
	// The dirty line was invalidated, so flushing adds nothing.
	h.Flush()
	if h.DRAMWriteBytes != 64 {
		t.Fatalf("stale dirty copy survived NT store: %d", h.DRAMWriteBytes)
	}
}

func TestNonTemporalPollution(t *testing.T) {
	// The paper's §IV-A claim: temporal stores of streamed-through data
	// evict the shared buffer; non-temporal stores leave it resident.
	mkRun := func(kind AccessKind) (bufMissesAfter int64) {
		h := tiny(t)
		// Buffer: 2 KiB, fits L2 (4 KiB).
		const bufBytes = 2 << 10
		buf := uint64(0)
		out := uint64(regionGap)
		for i := 0; i < bufBytes; i += 64 {
			h.Access(buf+uint64(i), 64, Write)
		}
		// Stream 64 KiB of output data through with the given store kind.
		for i := 0; i < 64<<10; i += 64 {
			h.Access(out+uint64(i), 64, kind)
		}
		// Touch the buffer again and count fresh L2 misses.
		l1Before, l2Before := h.Stats(0).Misses, h.Stats(1).Misses
		for i := 0; i < bufBytes; i += 64 {
			h.Access(buf+uint64(i), 64, Read)
		}
		_ = l1Before
		return h.Stats(1).Misses - l2Before
	}
	ntMisses := mkRun(WriteNT)
	tMisses := mkRun(Write)
	if ntMisses != 0 {
		t.Fatalf("NT stores should not evict the buffer, got %d misses", ntMisses)
	}
	if tMisses == 0 {
		t.Fatal("temporal streaming stores should have evicted the buffer")
	}
}

func TestStridedPencilAmplification(t *testing.T) {
	// A strided pencil sweep over a matrix much larger than the cache
	// must move far more DRAM traffic than the ideal 2·N·16 bytes; the
	// same sweep on a cache-resident matrix must not.
	h := tiny(t)                        // 4 KiB LLC
	StridedPencilSweep(h, 256, 256, 16) // 1 MiB matrix
	big := TrafficAmplification(h, 256*256, 16)
	if big < 2 {
		t.Fatalf("large strided sweep amplification %.2f, want ≥ 2", big)
	}
	h2 := tiny(t)
	StridedPencilSweep(h2, 8, 8, 16) // 1 KiB matrix, cache resident
	small := TrafficAmplification(h2, 8*8, 16)
	if small > 1.5 {
		t.Fatalf("cache-resident sweep amplification %.2f, want ≈ 1", small)
	}
	if big <= small {
		t.Fatal("amplification should grow out of cache")
	}
}

func TestSequentialCopyTemporalVsNT(t *testing.T) {
	// A temporal copy pays the write-allocate read of the destination:
	// 1.5× the ideal traffic. The non-temporal copy is exactly ideal —
	// precisely why the paper's data threads use NT loads and stores.
	h := tiny(t)
	SequentialCopy(h, 4096, 16) // 64 KiB copied
	amp := TrafficAmplification(h, 4096, 16)
	if amp < 1.45 || amp > 1.55 {
		t.Fatalf("temporal copy amplification %.3f, want ≈ 1.5 (write-allocate)", amp)
	}
	h2 := tiny(t)
	SequentialCopyNT(h2, 4096, 16)
	ampNT := TrafficAmplification(h2, 4096, 16)
	if ampNT < 0.99 || ampNT > 1.01 {
		t.Fatalf("NT copy amplification %.3f, want exactly 1", ampNT)
	}
}

func TestDoubleBufStageTrafficNearIdeal(t *testing.T) {
	// One pipelined stage: data in once (NT), out once (NT rotated),
	// buffer resident. DRAM traffic ≈ 2·N·16 regardless of the rotation's
	// scatter, because NT stores write whole blocks.
	h := tiny(t)
	const total, buf = 1 << 12, 128 // buffer 2 KiB fits L2
	DoubleBufStage(h, total, buf, 4, 64, 3, 16)
	amp := TrafficAmplification(h, total, 16)
	if amp > 1.25 {
		t.Fatalf("doublebuf stage amplification %.3f, want ≈ 1", amp)
	}
}

func TestStagePassesFusedChainDrop(t *testing.T) {
	// Plain radix-4 chain: one sweep per rank stage (log4 n). Fused
	// radix-16 + store fold: two rank stages per sweep, final stage free.
	cases := []struct{ n, plain, fused int }{
		{4, 1, 1}, {16, 2, 1}, {64, 3, 1}, {256, 4, 2}, {1024, 5, 2}, {4096, 6, 3},
	}
	for _, c := range cases {
		if got := StagePasses(c.n, false); got != c.plain {
			t.Errorf("StagePasses(%d, plain) = %d, want %d", c.n, got, c.plain)
		}
		if got := StagePasses(c.n, true); got != c.fused {
			t.Errorf("StagePasses(%d, fused) = %d, want %d", c.n, got, c.fused)
		}
	}

	// The sweep drop shows up as cache-level work, not DRAM traffic: the
	// buffer stays resident either way, so DRAM bytes match while the
	// fused schedule makes roughly half the buffer accesses.
	const total, buf = 1 << 12, 256
	hPlain, hFused := tiny(t), tiny(t)
	DoubleBufStage(hPlain, total, buf, 4, 16, StagePasses(buf, false), 16)
	DoubleBufStage(hFused, total, buf, 4, 16, StagePasses(buf, true), 16)
	if hPlain.DRAMWriteBytes != hFused.DRAMWriteBytes {
		t.Errorf("DRAM writes differ: plain %d, fused %d",
			hPlain.DRAMWriteBytes, hFused.DRAMWriteBytes)
	}
	p := hPlain.Stats(0)
	f := hFused.Stats(0)
	if f.Hits+f.Misses >= p.Hits+p.Misses {
		t.Errorf("fused L1 accesses %d not below plain %d",
			f.Hits+f.Misses, p.Hits+p.Misses)
	}
}

func TestDoubleBufVsPencilTraffic(t *testing.T) {
	// Head-to-head on equal data: the pipelined stage should move
	// substantially fewer DRAM bytes than the strided pencil stage.
	const rows, cols = 256, 256
	hP := tiny(t)
	StridedPencilSweep(hP, rows, cols, 16)
	pencil := hP.DRAMReadBytes + hP.DRAMWriteBytes

	hD := tiny(t)
	DoubleBufStage(hD, rows*cols, 128, 4, cols/4, 3, 16)
	db := hD.DRAMReadBytes + hD.DRAMWriteBytes

	if float64(pencil) < 1.5*float64(db) {
		t.Fatalf("pencil traffic %d not ≫ doublebuf traffic %d", pencil, db)
	}
}

func TestFromMachine(t *testing.T) {
	h, err := FromMachine(machine.KabyLake7700K)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 {
		t.Fatalf("levels = %d, want 3", h.Levels())
	}
	if h.LineBytes() != 64 {
		t.Fatal("line size wrong")
	}
	h.Access(0, 16, Read)
	if h.DRAMReadBytes == 0 {
		t.Fatal("machine-built hierarchy not functional")
	}
	h.Reset()
	if h.DRAMReadBytes != 0 || h.Stats(0).Misses != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("accepted empty hierarchy")
	}
	if _, err := New(LevelSpec{SizeBytes: 0, Ways: 1, LineBytes: 64}); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := New(LevelSpec{SizeBytes: 1024, Ways: 1, LineBytes: 60}); err == nil {
		t.Error("accepted non-power-of-two line")
	}
	h := tiny(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("accepted non-positive access size")
			}
		}()
		h.Access(0, 0, Read)
	}()
}

func TestAccessKindStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" ||
		ReadNT.String() != "read-nt" || WriteNT.String() != "write-nt" {
		t.Fatal("kind names wrong")
	}
}
