package fft3d

import "fmt"

// TransformMany applies the plan to count independent cubes stored
// back-to-back (the FFTW "many"/howmany interface): dst and src must each
// hold count·Len() elements and must not overlap. The cubes execute
// sequentially, reusing the plan's pipeline buffers and work arrays, so the
// per-transform planning and allocation cost is paid once.
func (p *Plan) TransformMany(dst, src []complex128, count, sign int) error {
	if count < 1 {
		return fmt.Errorf("fft3d: TransformMany count=%d", count)
	}
	if len(dst) != count*p.Len() || len(src) != count*p.Len() {
		return fmt.Errorf("fft3d: TransformMany lengths dst=%d src=%d, want %d·%d",
			len(dst), len(src), count, p.Len())
	}
	n := p.Len()
	for c := 0; c < count; c++ {
		if err := p.Transform(dst[c*n:(c+1)*n], src[c*n:(c+1)*n], sign); err != nil {
			return fmt.Errorf("fft3d: batch element %d: %w", c, err)
		}
	}
	return nil
}
