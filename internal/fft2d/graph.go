package fft2d

import (
	"repro/internal/stagegraph"
)

// buildStages compiles the plan's two-stage SPL factorization into a stage
// graph. Stage 1 reads src and produces the blocked-transposed
// intermediate in the work array; stage 2 reads the intermediate and
// produces dst in the original row-major layout. Both stages load
// contiguous blocks, compute contiguous pencils, and store at cacheline
// granularity; in split format the stage-1 load fuses the
// interleaved→split conversion and the stage-2 store fuses split→
// interleaved (§IV-A). Endpoints may be nil when only describing.
func (p *Plan) buildStages(dst, src []complex128, sign int) []stagegraph.Stage {
	n, m, mu, mb := p.n, p.m, p.opts.Mu, p.mb
	rows, xbs := p.rows1, p.xbs2
	rowLen := n * mu

	// ---- Stage 1: (L_{m/μ}^{mn/μ} ⊗ I_μ) (I_n ⊗ DFT_m) ----
	s1 := stagegraph.Stage{
		Name: "rows", Iters: n / rows, Units: rows, UnitLen: m,
		Src: stagegraph.Endpoint{C: src},
		// Blocked transpose: buffer row r (global row g), block xb →
		// work[(xb·n + g)·μ …].
		Rot: stagegraph.Rotation{Blocks: mb, BlockLen: mu,
			Map: func(g, xb int) int { return (xb*n + g) * mu }},
	}
	// ---- Stage 2: (L_n^{mn/μ} ⊗ I_μ) (I_{m/μ} ⊗ DFT_n ⊗ I_μ) ----
	s2 := stagegraph.Stage{
		Name: "cols", Iters: mb / xbs, Units: xbs, UnitLen: rowLen,
		Dst: stagegraph.Endpoint{C: dst},
		// Transpose back: buffer xb-row (global block-column g), row r →
		// dst[(r·mb + g)·μ …] = original row-major layout.
		Rot: stagegraph.Rotation{Blocks: n, BlockLen: mu,
			Map: func(g, r int) int { return (r*mb + g) * mu }},
	}

	if p.opts.SplitFormat {
		s1.Dst = stagegraph.Endpoint{Re: p.workRe, Im: p.workIm}
		s2.Src = stagegraph.Endpoint{Re: p.workRe, Im: p.workIm}
		s1.Compute = func(b *stagegraph.Buffers, half, iter, lo, hi int) {
			if lo < hi {
				p.rowPlan.BatchSplit(b.Re[half][lo*m:hi*m], b.Im[half][lo*m:hi*m], hi-lo, sign)
			}
		}
		s2.Compute = func(b *stagegraph.Buffers, half, iter, lo, hi int) {
			for xb := lo; xb < hi; xb++ {
				s, e := xb*rowLen, (xb+1)*rowLen
				p.colPlan.InPlaceLanesSplit(b.Re[half][s:e], b.Im[half][s:e], mu, sign)
			}
		}
	} else {
		s1.Dst = stagegraph.Endpoint{C: p.work}
		s2.Src = stagegraph.Endpoint{C: p.work}
		s1.Compute = func(b *stagegraph.Buffers, half, iter, lo, hi int) {
			if lo < hi {
				p.rowPlan.Batch(b.C[half][lo*m:hi*m], hi-lo, sign)
			}
		}
		s2.Compute = func(b *stagegraph.Buffers, half, iter, lo, hi int) {
			for xb := lo; xb < hi; xb++ {
				p.colPlan.InPlaceLanes(b.C[half][xb*rowLen:(xb+1)*rowLen], mu, sign)
			}
		}
	}
	return []stagegraph.Stage{s1, s2}
}

// doubleBuf executes the compiled two-stage graph through the shared
// executor, fusing the stage boundary unless the plan is configured
// unfused.
func (p *Plan) doubleBuf(dst, src []complex128, sign int) error {
	p.lock.Lock()
	defer p.lock.Unlock()
	st, err := stagegraph.Run(stagegraph.Config{
		DataWorkers:    p.opts.DataWorkers,
		ComputeWorkers: p.opts.ComputeWorkers,
		Fused:          !p.opts.Unfused,
		Tracer:         p.opts.Tracer,
	}, p.bufs, p.buildStages(dst, src, sign))
	if err != nil {
		return err
	}
	p.lastStats = st
	return nil
}
