// Command fftserved serves FFT transforms over HTTP on top of the batched,
// backpressured serving layer (internal/serve): requests of any rank share
// a bounded plan cache, same-shape 1D requests coalesce into single batched
// pencil executions, and shutdown drains in-flight work before exiting.
//
// Endpoints:
//
//	POST /transform     {"rank":1,"dims":[4096],"inverse":false,"data":[re,im,...]}
//	                    → {"data":[re,im,...]}
//	GET  /metrics       Prometheus text exposition: request counters, latency
//	                    histogram, queue/cache gauges, and per-plan per-stage
//	                    bandwidth vs. the roofline
//	GET  /metrics.json  the same counters as a JSON snapshot
//	GET  /healthz       200 while serving, 503 once draining
//	GET  /debug/pprof/  Go profiling endpoints (only with -pprof)
//
// Complex data crosses the wire as interleaved re,im float64 pairs, so a
// rank-r request carries 2·∏dims numbers. Setting "real":true selects the
// real-input (r2c/c2r) pipeline: dims describe the real grid (last dim
// even), a forward request carries ∏dims plain reals and returns the
// Hermitian half spectrum (last dim n/2+1) as interleaved pairs, and an
// inverse request carries the half spectrum and returns ∏dims reals.
//
// The roofline the per-stage bandwidth gauges are normalized against comes
// from -roofline (GB/s), or from -machine (a paper machine's published
// STREAM figure), or — when neither is given — from a quick STREAM copy
// measurement at startup.
//
// The -selftest N mode starts the server on a loopback port, fires N
// concurrent mixed-shape requests at it, verifies round trips, the
// /healthz endpoint and both metric surfaces (the Prometheus text must
// parse cleanly and carry finite per-stage bandwidth gauges), then drains
// and exits — the `make servesmoke` and `make obssmoke` targets.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/trace"
)

// buildInfo identifies this binary in /metrics (fft_build_info) and in the
// fleet exposition: version, vcs commit, compiled kernel tier, GOMAXPROCS.
var buildInfo = obs.ReadBuildInfo(kernels.Tier())

func main() {
	var (
		addr        = flag.String("addr", ":8123", "HTTP listen address")
		queue       = flag.Int("queue", 256, "submit queue depth")
		maxBatch    = flag.Int("maxbatch", 16, "max same-shape 1D requests coalesced per execution (1 disables)")
		window      = flag.Duration("window", 200*time.Microsecond, "batching window: how long to linger for a deeper batch")
		executors   = flag.Int("executors", 2, "concurrent batch executors")
		cacheCap    = flag.Int("cachecap", 32, "plan cache capacity")
		policy      = flag.String("policy", "block", "full-queue policy: block or reject")
		machineName = flag.String("machine", "", "paper machine whose STREAM peak normalizes the bandwidth gauges (substring match, e.g. \"7700k\")")
		roofline    = flag.Float64("roofline", 0, "STREAM peak in GB/s for the bandwidth gauges (0 = measure at startup, or take it from -machine)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		selftest    = flag.Int("selftest", 0, "fire N concurrent smoke requests at a loopback instance and exit")

		shardWorkerOn = flag.Bool("shardworker", false, "serve distributed shard worker endpoints under /shard/")
		peers         = flag.String("peers", "", "comma-separated worker base URLs; enables coordinator mode for sharded /transform requests")
		shardSelftest = flag.Int("shardselftest", 0, "boot a loopback shard cluster, round-trip an N³ cube sharded vs single-node, validate /metrics, and exit")

		logFormat     = flag.String("logformat", "text", "structured log format: text or json")
		logLevel      = flag.String("loglevel", "info", "log level: debug, info, warn or error")
		flightrecCap  = flag.Int("flightrec", 64, "flight recorder depth: last N requests under /debug/flightrec (0 disables)")
		traceSelftest = flag.Bool("traceselftest", false, "boot a loopback 3-worker cluster, run a traced sharded transform, validate the merged Perfetto timeline, /metrics/fleet and /debug/flightrec, and exit")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		log.Fatalf("fftserved: %v", err)
	}

	var pol serve.Policy
	switch *policy {
	case "block":
		pol = serve.Block
	case "reject":
		pol = serve.Reject
	default:
		log.Fatalf("fftserved: -policy must be block or reject, got %q", *policy)
	}

	cfg := core.Default()
	if *machineName != "" {
		m, err := machine.Lookup(*machineName)
		if err != nil {
			log.Fatalf("fftserved: %v", err)
		}
		cfg.MachineName = m.Name
		cfg.RooflineGBs = m.StreamGBs
	}
	if *roofline > 0 {
		cfg.RooflineGBs = *roofline
	}
	if cfg.RooflineGBs == 0 {
		// One quick STREAM copy pass so FracPeak gauges are meaningful out
		// of the box; -roofline skips this for reproducible normalization.
		cfg.RooflineGBs = stream.BestCopyGBs(stream.Config{Elems: 1 << 20, Trials: 1})
		log.Printf("fftserved: measured STREAM copy roofline %.1f GB/s", cfg.RooflineGBs)
	}

	if *shardSelftest > 0 {
		if err := runShardSelftest(cfg, *shardSelftest); err != nil {
			log.Fatalf("fftserved: shard selftest failed: %v", err)
		}
		fmt.Println("fftserved: shard selftest ok")
		return
	}
	if *traceSelftest {
		if err := runTraceSelftest(cfg); err != nil {
			log.Fatalf("fftserved: trace selftest failed: %v", err)
		}
		fmt.Println("fftserved: trace selftest ok")
		return
	}

	// Coordinator mode: sharded /transform requests fan out across the
	// worker fleet named by -peers. The same peer list feeds the
	// /metrics/fleet aggregation.
	var runner serve.ShardRunner
	var coord *shard.Coordinator
	var fleetPeers []string
	if *peers != "" {
		nodes := strings.Split(*peers, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
		var err error
		coord, err = shard.NewCoordinator(shard.CoordinatorOptions{Nodes: nodes, Logger: logger})
		if err != nil {
			log.Fatalf("fftserved: %v", err)
		}
		runner = coordRunner{coord}
		fleetPeers = nodes
		log.Printf("fftserved: coordinating %d shard workers", len(nodes))
	}

	s := serve.New(serve.Options{
		Config:        cfg,
		QueueDepth:    *queue,
		MaxBatch:      *maxBatch,
		BatchWindow:   *window,
		Executors:     *executors,
		CacheCapacity: *cacheCap,
		Policy:        pol,
		ShardRunner:   runner,
		Logger:        logger,
	})
	h := &handler{s: s, pprof: *pprofOn, coord: coord, fleetPeers: fleetPeers}
	if *flightrecCap > 0 {
		h.flight = flightrec.New(*flightrecCap)
	}
	if *shardWorkerOn {
		h.worker = shard.NewWorker(shard.WorkerOptions{Logger: logger})
		log.Print("fftserved: shard worker endpoints mounted under /shard/")
	}

	if *selftest > 0 {
		if err := runSelftest(h, *selftest); err != nil {
			log.Fatalf("fftserved: selftest failed: %v", err)
		}
		fmt.Println("fftserved: selftest ok")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: h.mux()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("fftserved: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Drain order matters for the shard tier: /healthz flips to 503
		// immediately (both drain flags), but HTTP must keep answering
		// until the last in-flight exchange chunk settles — a worker
		// receives exchange traffic over this very listener. Only then
		// does the HTTP server itself shut down.
		if h.worker != nil {
			h.worker.BeginDrain()
		}
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("fftserved: drain: %v", err)
		}
		if h.worker != nil {
			if err := h.worker.Drain(ctx); err != nil {
				log.Printf("fftserved: shard drain: %v", err)
			}
			h.worker.Close()
		}
		_ = httpSrv.Shutdown(ctx)
	}()
	log.Printf("fftserved: listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("fftserved: %v", err)
	}
}

// buildLogger maps the -logformat/-loglevel flags to a slog.Logger.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-loglevel must be debug, info, warn or error, got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-logformat must be text or json, got %q", format)
}

type handler struct {
	s          *serve.Server
	worker     *shard.Worker      // non-nil when -shardworker mounts /shard/
	coord      *shard.Coordinator // non-nil in coordinator mode (-peers)
	flight     *flightrec.Recorder
	fleetPeers []string // worker base URLs scraped by /metrics/fleet
	pprof      bool
}

func (h *handler) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/transform", h.transform)
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/metrics/fleet", h.metricsFleet)
	mux.HandleFunc("/metrics.json", h.metricsJSON)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/debug/trace/", h.debugTrace)
	if h.flight != nil {
		mux.Handle("/debug/flightrec", h.flight)
	}
	if h.worker != nil {
		mux.Handle("/shard/", h.worker.Handler())
	}
	if h.pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// transformRequest is the wire format of one transform. Data holds
// interleaved re,im pairs on every complex side, and plain reals on the
// real side of a real-input transform (forward input, inverse output).
type transformRequest struct {
	Rank    int       `json:"rank"`
	Dims    []int     `json:"dims"`
	Inverse bool      `json:"inverse"`
	Real    bool      `json:"real,omitempty"`
	Sharded bool      `json:"sharded,omitempty"`
	Data    []float64 `json:"data"`
}

type transformResponse struct {
	Data []float64 `json:"data"`
}

func (h *handler) transform(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var treq transformRequest
	if err := json.NewDecoder(r.Body).Decode(&treq); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if treq.Rank < 1 || treq.Rank > 3 || len(treq.Dims) != treq.Rank {
		http.Error(w, fmt.Sprintf("rank %d needs exactly %d dims, got %d",
			treq.Rank, treq.Rank, len(treq.Dims)), http.StatusBadRequest)
		return
	}
	n := 1
	var dims [3]int
	for i, d := range treq.Dims {
		if d < 1 {
			http.Error(w, fmt.Sprintf("dims must be ≥ 1, got %v", treq.Dims), http.StatusBadRequest)
			return
		}
		dims[i] = d
		n *= d
	}
	req := serve.Request{Rank: treq.Rank, Dims: dims, Inverse: treq.Inverse, Real: treq.Real, Sharded: treq.Sharded}
	var encode func() []float64
	switch {
	case treq.Real && !treq.Inverse:
		if len(treq.Data) != n {
			http.Error(w, fmt.Sprintf("want %d real values for %v, got %d",
				n, treq.Dims, len(treq.Data)), http.StatusBadRequest)
			return
		}
		spec := specLen(dims, treq.Rank, n)
		req.RealSrc = treq.Data
		req.Dst = make([]complex128, spec)
		encode = func() []float64 { return interleave(req.Dst) }
	case treq.Real:
		spec := specLen(dims, treq.Rank, n)
		if len(treq.Data) != 2*spec {
			http.Error(w, fmt.Sprintf("want %d interleaved re,im half-spectrum values for %v, got %d",
				2*spec, treq.Dims, len(treq.Data)), http.StatusBadRequest)
			return
		}
		req.Src = deinterleave(treq.Data)
		req.RealDst = make([]float64, n)
		encode = func() []float64 { return req.RealDst }
	default:
		if len(treq.Data) != 2*n {
			http.Error(w, fmt.Sprintf("want %d interleaved re,im values for %v, got %d",
				2*n, treq.Dims, len(treq.Data)), http.StatusBadRequest)
			return
		}
		req.Src = deinterleave(treq.Data)
		req.Dst = make([]complex128, n)
		encode = func() []float64 { return interleave(req.Dst) }
	}

	// Every request gets a trace ID, echoed in the response header. For
	// sharded requests it rides the context into the coordinator, so the
	// whole fleet tags this transform's spans with it and the caller can
	// pull the merged timeline from /debug/trace/<id>.
	traceID := trace.NewTraceID()
	ctx := trace.ContextWithID(r.Context(), traceID)
	w.Header().Set("X-Trace-Id", traceID)

	start := time.Now()
	err := h.s.Do(ctx, req)
	h.recordFlight(traceID, &treq, dims, start, err)
	switch {
	case err == nil:
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(transformResponse{Data: encode()})
}

// recordFlight files one settled request in the flight recorder ring.
func (h *handler) recordFlight(traceID string, treq *transformRequest, dims [3]int, start time.Time, err error) {
	kind := "complex"
	switch {
	case treq.Sharded:
		kind = "shard"
	case treq.Real:
		kind = "real"
	}
	e := flightrec.Entry{
		Time: start, TraceID: traceID, Kind: kind,
		Dims: dims, Rank: treq.Rank, Inverse: treq.Inverse,
		Duration: time.Since(start), Status: "ok",
	}
	if err != nil {
		e.Status = "error"
		e.Error = err.Error()
		switch {
		case errors.Is(err, serve.ErrOverloaded):
			e.ErrKind = "overloaded"
		case errors.Is(err, serve.ErrClosed):
			e.ErrKind = "closed"
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			e.ErrKind = "deadline"
		default:
			if se, ok := shard.AsError(err); ok {
				e.ErrKind = se.Kind.String()
			} else {
				e.ErrKind = "invalid"
			}
		}
	}
	h.flight.Record(e)
}

// specLen returns the Hermitian half-spectrum element count for a real
// grid of n elements whose last (contiguous) dim is dims[rank-1].
func specLen(dims [3]int, rank, n int) int {
	last := dims[rank-1]
	return n / last * (last/2 + 1)
}

func interleave(c []complex128) []float64 {
	out := make([]float64, 2*len(c))
	for i, v := range c {
		out[2*i] = real(v)
		out[2*i+1] = imag(v)
	}
	return out
}

func deinterleave(data []float64) []complex128 {
	c := make([]complex128, len(data)/2)
	for i := range c {
		c[i] = complex(data[2*i], data[2*i+1])
	}
	return c
}

// metrics serves the Prometheus text exposition: the serving layer's
// counters and latency histogram followed by the per-plan per-stage
// bandwidth gauges of every live collector in the process-wide registry.
// The two writers emit disjoint metric families, so concatenation is a
// valid exposition.
func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := h.writeMetrics(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// writeMetrics emits this node's full exposition: serving counters,
// per-plan bandwidth gauges, shard families, and the build-info gauge.
// All four writers emit disjoint metric families, so concatenation is a
// valid exposition.
func (h *handler) writeMetrics(buf *bytes.Buffer) error {
	if err := h.s.WritePrometheus(buf); err != nil {
		return err
	}
	if err := obs.Default.WritePrometheus(buf); err != nil {
		return err
	}
	if err := obs.ShardDefault.WritePrometheus(buf); err != nil {
		return err
	}
	return buildInfo.WritePrometheus(buf)
}

// fleetClient scrapes peers for /metrics/fleet; bounded so one stuck peer
// cannot hang the aggregation.
var fleetClient = &http.Client{Timeout: 10 * time.Second}

// metricsFleet aggregates the fleet's expositions: this node's own metrics
// plus a live scrape of every -peers worker, each sample relabeled with a
// node label, re-emitted as one merged exposition.
func (h *handler) metricsFleet(w http.ResponseWriter, r *http.Request) {
	var local bytes.Buffer
	if err := h.writeMetrics(&local); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	exp, err := obs.ParseExposition(&local)
	if err != nil {
		http.Error(w, fmt.Sprintf("local exposition: %v", err), http.StatusInternalServerError)
		return
	}
	nodes := []obs.NodeExposition{{Node: "self", Exp: exp}}
	for _, peer := range h.fleetPeers {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/metrics", nil)
		if err != nil {
			http.Error(w, fmt.Sprintf("peer %s: %v", peer, err), http.StatusInternalServerError)
			return
		}
		resp, err := fleetClient.Do(req)
		if err != nil {
			http.Error(w, fmt.Sprintf("scrape %s: %v", peer, err), http.StatusBadGateway)
			return
		}
		pexp, perr := obs.ParseExposition(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			http.Error(w, fmt.Sprintf("scrape %s: status %d", peer, resp.StatusCode), http.StatusBadGateway)
			return
		}
		if perr != nil {
			http.Error(w, fmt.Sprintf("scrape %s: %v", peer, perr), http.StatusBadGateway)
			return
		}
		nodes = append(nodes, obs.NodeExposition{Node: peer, Exp: pexp})
	}
	var out bytes.Buffer
	if err := obs.WriteFleet(&out, nodes); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(out.Bytes())
}

// debugTrace serves the merged Perfetto timeline of one sharded transform:
// GET /debug/trace/<id> (or /debug/trace/last) gathers every fleet
// member's span slice over /shard/trace and emits one Chrome trace_event
// JSON document, loadable directly in ui.perfetto.dev.
func (h *handler) debugTrace(w http.ResponseWriter, r *http.Request) {
	if h.coord == nil {
		http.Error(w, "not a shard coordinator (start with -peers)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" || id == "last" {
		id = h.coord.LastTraceID()
	}
	if id == "" {
		http.Error(w, "no traces retained yet", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := h.coord.WriteMergedTrace(r.Context(), &buf, id); err != nil {
		if se, ok := shard.AsError(err); ok && se.Kind == shard.KindProtocol {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (h *handler) metricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h.s.Stats())
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	if !h.s.Healthy() || (h.worker != nil && h.worker.Draining()) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// runSelftest exercises the full HTTP surface against a loopback instance:
// total concurrent round trips across mixed shapes, endpoint checks, and a
// drain that must account for every request.
func runSelftest(h *handler, total int) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: h.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	if err := checkHealthz(base, http.StatusOK); err != nil {
		return err
	}

	shapes := []struct {
		rank int
		dims []int
		real bool
	}{
		{1, []int{256}, false},
		{1, []int{1024}, false},
		{2, []int{32, 32}, false},
		{3, []int{8, 8, 8}, false},
		{1, []int{512}, true},
		{2, []int{16, 32}, true},
		{3, []int{8, 8, 16}, true},
	}
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	for g := 0; g < total; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := shapes[g%len(shapes)]
			var err error
			if sh.real {
				err = roundTripReal(base, sh.rank, sh.dims, g)
			} else {
				err = roundTrip(base, sh.rank, sh.dims, g)
			}
			if err != nil {
				errCh <- fmt.Errorf("request %d (%v real=%v): %w", g, sh.dims, sh.real, err)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	var snap serve.Snapshot
	if err := getJSON(base+"/metrics.json", &snap); err != nil {
		return err
	}
	// Every smoke request is a forward+inverse pair.
	if want := uint64(2 * total); snap.Completed < want {
		return fmt.Errorf("/metrics.json: completed %d < %d submitted", snap.Completed, want)
	}
	if !snap.Healthy || snap.Failed != 0 {
		return fmt.Errorf("/metrics.json: unexpected state %+v", snap)
	}
	if err := checkPrometheus(base, snap.Completed); err != nil {
		return err
	}
	fmt.Printf("fftserved: %d requests, avg batch %.1f, p99 %s, cache %d/%d (%d hits)\n",
		snap.Completed, snap.AvgBatch, time.Duration(snap.P99LatencyNs),
		snap.Cache.Len, snap.Cache.Capacity, snap.Cache.Hits)

	// Drain: transform pipeline first so /healthz flips while HTTP still
	// answers, then the HTTP server.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := checkHealthz(base, http.StatusServiceUnavailable); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// roundTrip sends a forward transform of a seeded vector followed by an
// inverse of the result and checks the pair composes to the identity.
func roundTrip(base string, rank int, dims []int, seed int) error {
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := make([]float64, 2*n)
	for i := range data {
		// Deterministic, seed-dependent, O(1)-range values.
		data[i] = math.Sin(float64(seed+1) * float64(i+1) * 0.7)
	}
	spec, err := postTransform(base, transformRequest{Rank: rank, Dims: dims, Data: data})
	if err != nil {
		return fmt.Errorf("forward: %w", err)
	}
	back, err := postTransform(base, transformRequest{Rank: rank, Dims: dims, Inverse: true, Data: spec})
	if err != nil {
		return fmt.Errorf("inverse: %w", err)
	}
	for i := range data {
		if math.Abs(back[i]-data[i]) > 1e-9*float64(n) {
			return fmt.Errorf("round trip diverged at %d: %g vs %g", i, back[i], data[i])
		}
	}
	return nil
}

// roundTripReal sends a forward real transform (plain reals in, half
// spectrum out) followed by the inverse and checks the identity — the
// r2c/c2r wire format end to end.
func roundTripReal(base string, rank int, dims []int, seed int) error {
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(seed+1) * float64(i+1) * 0.7)
	}
	spec, err := postTransform(base, transformRequest{Rank: rank, Dims: dims, Real: true, Data: data})
	if err != nil {
		return fmt.Errorf("forward: %w", err)
	}
	wantSpec := n / dims[rank-1] * (dims[rank-1]/2 + 1)
	if len(spec) != 2*wantSpec {
		return fmt.Errorf("half spectrum carries %d values, want %d", len(spec), 2*wantSpec)
	}
	back, err := postTransform(base, transformRequest{Rank: rank, Dims: dims, Real: true, Inverse: true, Data: spec})
	if err != nil {
		return fmt.Errorf("inverse: %w", err)
	}
	if len(back) != n {
		return fmt.Errorf("real inverse carries %d values, want %d", len(back), n)
	}
	for i := range data {
		if math.Abs(back[i]-data[i]) > 1e-9*float64(n) {
			return fmt.Errorf("real round trip diverged at %d: %g vs %g", i, back[i], data[i])
		}
	}
	return nil
}

func postTransform(base string, treq transformRequest) ([]float64, error) {
	body, err := json.Marshal(treq)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/transform", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var tresp transformResponse
	if err := json.NewDecoder(resp.Body).Decode(&tresp); err != nil {
		return nil, err
	}
	return tresp.Data, nil
}

// checkPrometheus scrapes /metrics and validates the exposition the way a
// Prometheus server would: it must parse, declare no duplicate series,
// carry the request counters and latency histogram consistent with the
// JSON snapshot, include at least one per-stage bandwidth gauge from the
// plans the smoke requests built, and contain no NaN or infinite value.
func checkPrometheus(base string, completed uint64) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("/metrics: content type %q, want text/plain exposition", ct)
	}
	samples, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("/metrics: invalid exposition: %w", err)
	}

	var sawCompleted, sawHistogram, sawStageGBs, sawRealExec, sawComplexExec, sawBuildInfo bool
	for _, s := range samples {
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return fmt.Errorf("/metrics: %s is %v", s.Series(), s.Value)
		}
		switch s.Name {
		case "fft_build_info":
			if s.Value != 1 || s.Labels["kernel_tier"] == "" || s.Labels["version"] == "" {
				return fmt.Errorf("/metrics: malformed fft_build_info %s = %v", s.Series(), s.Value)
			}
			sawBuildInfo = true
		case "fft_requests_total":
			if s.Labels["result"] == "completed" {
				if uint64(s.Value) != completed {
					return fmt.Errorf("/metrics: completed counter %v, want %d", s.Value, completed)
				}
				sawCompleted = true
			}
		case "fft_request_duration_seconds_count":
			if s.Value <= 0 {
				return fmt.Errorf("/metrics: latency histogram empty after %d requests", completed)
			}
			sawHistogram = true
		case "fft_stage_bandwidth_gbps":
			if s.Value > 0 {
				sawStageGBs = true
			}
		case "fft_plan_executions_total":
			switch s.Labels["kind"] {
			case "real":
				sawRealExec = s.Value > 0
			case "complex":
				sawComplexExec = s.Value > 0
			}
		}
	}
	switch {
	case !sawCompleted:
		return errors.New("/metrics: missing fft_requests_total{result=\"completed\"}")
	case !sawHistogram:
		return errors.New("/metrics: missing fft_request_duration_seconds_count")
	case !sawStageGBs:
		return errors.New("/metrics: no positive fft_stage_bandwidth_gbps gauge from the smoke plans")
	case !sawRealExec || !sawComplexExec:
		return fmt.Errorf("/metrics: fft_plan_executions_total kind split missing (real=%v complex=%v)",
			sawRealExec, sawComplexExec)
	case !sawBuildInfo:
		return errors.New("/metrics: missing fft_build_info")
	}
	return nil
}

func getJSON(url string, into any) (err error) {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func checkHealthz(base string, want int) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("/healthz: status %d, want %d", resp.StatusCode, want)
	}
	return nil
}
