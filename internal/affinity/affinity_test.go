package affinity

import "testing"

func TestSMTPairedLayout(t *testing.T) {
	// Intel style (Fig. 2A): each core hosts one compute and one data
	// thread on its two hyperthreads.
	l, err := NewLayout(SMTPaired, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Workers) != 8 {
		t.Fatalf("workers = %d, want 8", len(l.Workers))
	}
	perCore := map[int][]Role{}
	for _, w := range l.Workers {
		perCore[w.Core] = append(perCore[w.Core], w.Role)
	}
	if len(perCore) != 4 {
		t.Fatalf("cores used = %d, want 4", len(perCore))
	}
	for core, roles := range perCore {
		if len(roles) != 2 || roles[0] == roles[1] {
			t.Fatalf("core %d roles = %v, want one of each", core, roles)
		}
	}
}

func TestSMTRequiresEqualCounts(t *testing.T) {
	if _, err := NewLayout(SMTPaired, 3, 4, 1); err == nil {
		t.Fatal("SMT pairing accepted pc != pd")
	}
}

func TestCorePairedLayout(t *testing.T) {
	// AMD style (Fig. 2B): threads on separate cores, L2-sharing
	// neighbours get one of each role.
	l, err := NewLayout(CorePaired, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Workers) != 8 {
		t.Fatalf("workers = %d, want 8", len(l.Workers))
	}
	cores := map[int]bool{}
	for _, w := range l.Workers {
		if cores[w.Core] {
			t.Fatalf("core %d assigned twice", w.Core)
		}
		cores[w.Core] = true
	}
	// Every L2 pair (cores 2g, 2g+1) holds one compute and one data.
	byGroup := map[int][]Role{}
	for _, w := range l.Workers {
		byGroup[w.Core/2] = append(byGroup[w.Core/2], w.Role)
	}
	for g, roles := range byGroup {
		if len(roles) != 2 || roles[0] == roles[1] {
			t.Fatalf("L2 group %d roles = %v, want one of each", g, roles)
		}
	}
}

func TestMultiSocketLayout(t *testing.T) {
	l, err := NewLayout(SMTPaired, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Workers) != 8 {
		t.Fatalf("workers = %d, want 8", len(l.Workers))
	}
	bySocket := map[int]int{}
	for _, w := range l.Workers {
		bySocket[w.Socket]++
	}
	if bySocket[0] != 4 || bySocket[1] != 4 {
		t.Fatalf("socket split = %v, want 4/4", bySocket)
	}
}

func TestRoleSelectors(t *testing.T) {
	l, _ := NewLayout(SMTPaired, 3, 3, 1)
	cw := l.ComputeWorkers()
	dw := l.DataWorkers()
	if len(cw) != 3 || len(dw) != 3 {
		t.Fatalf("selectors = %d/%d, want 3/3", len(cw), len(dw))
	}
	for _, w := range cw {
		if w.Role != ComputeRole {
			t.Fatal("ComputeWorkers returned a data worker")
		}
	}
	for _, w := range dw {
		if w.Role != DataRole {
			t.Fatal("DataWorkers returned a compute worker")
		}
	}
}

func TestPairOf(t *testing.T) {
	l, _ := NewLayout(SMTPaired, 2, 2, 1)
	for _, w := range l.Workers {
		p, ok := l.PairOf(w)
		if !ok {
			t.Fatalf("worker %d has no pair", w.ID)
		}
		if p.Core != w.Core || p.Role == w.Role {
			t.Fatalf("worker %d paired wrongly with %d", w.ID, p.ID)
		}
	}
	lc, _ := NewLayout(CorePaired, 2, 2, 1)
	for _, w := range lc.Workers {
		p, ok := lc.PairOf(w)
		if !ok {
			t.Fatalf("core-paired worker %d has no pair", w.ID)
		}
		if p.Core/2 != w.Core/2 || p.Role == w.Role {
			t.Fatalf("core-paired worker %d paired wrongly", w.ID)
		}
	}
}

func TestValidation(t *testing.T) {
	for _, c := range []struct{ pc, pd, sk int }{
		{0, 1, 1}, {1, 0, 1}, {1, 1, 0},
	} {
		if _, err := NewLayout(SMTPaired, c.pc, c.pd, c.sk); err == nil {
			t.Errorf("accepted pc=%d pd=%d sk=%d", c.pc, c.pd, c.sk)
		}
	}
	if _, err := NewLayout(PairingStyle(42), 1, 1, 1); err == nil {
		t.Error("accepted unknown pairing style")
	}
}

func TestStrings(t *testing.T) {
	if ComputeRole.String() != "compute" || DataRole.String() != "data" {
		t.Fatal("role names wrong")
	}
	if SMTPaired.String() != "smt-paired" || CorePaired.String() != "core-paired" {
		t.Fatal("style names wrong")
	}
}

func TestPinRuns(t *testing.T) {
	ran := false
	Pin(func() { ran = true })
	if !ran {
		t.Fatal("Pin did not run the body")
	}
	Yield() // must not panic
}
