package cvec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(16)
	if len(v) != 16 {
		t.Fatalf("len = %d, want 16", len(v))
	}
	for i, c := range v {
		if c != 0 {
			t.Fatalf("v[%d] = %v, want 0", i, c)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := Random(rng, 32)
	w := v.Clone()
	w[0] = 42
	if v[0] == 42 {
		t.Fatal("Clone shares storage with original")
	}
	if MaxDiff(v[1:], w[1:]) != 0 {
		t.Fatal("Clone altered other elements")
	}
}

func TestScaleAndZero(t *testing.T) {
	v := Vec{1, 2i, 3 + 4i}
	v.Scale(2i)
	want := Vec{2i, -4, -8 + 6i}
	if MaxDiff(v, want) > 1e-15 {
		t.Fatalf("Scale: got %v want %v", v, want)
	}
	v.Zero()
	if v.L2() != 0 {
		t.Fatal("Zero left nonzero entries")
	}
}

func TestAXPYDot(t *testing.T) {
	v := Vec{1, 2, 3}
	x := Vec{1i, 1i, 1i}
	v.AXPY(2, x)
	want := Vec{1 + 2i, 2 + 2i, 3 + 2i}
	if MaxDiff(v, want) > 1e-15 {
		t.Fatalf("AXPY: got %v want %v", v, want)
	}
	d := Vec{1, 1i}.Dot(Vec{1i, 1i})
	if d != (1i - 1) {
		t.Fatalf("Dot = %v, want (-1+1i)", d)
	}
}

func TestNorms(t *testing.T) {
	v := Vec{3 + 4i, 0}
	if got := v.L2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if got := v.MaxAbs(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
}

func TestRelErr(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{1, 2, 3}
	if RelErr(v, w) != 0 {
		t.Fatal("RelErr of identical vectors != 0")
	}
	w2 := Vec{1 + 1e-8i, 2, 3}
	if e := RelErr(v, w2); e <= 0 || e > 1e-7 {
		t.Fatalf("RelErr = %v, want small positive", e)
	}
}

func TestApproxEqual(t *testing.T) {
	v := Vec{1000, 2000}
	w := Vec{1000 + 1e-9i, 2000}
	if !ApproxEqual(v, w, 1e-10) {
		t.Fatal("ApproxEqual should scale tolerance by magnitude")
	}
	if ApproxEqual(Vec{0, 1}, Vec{1, 1}, 1e-3) {
		t.Fatal("ApproxEqual accepted grossly different vectors")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Vec{1}.AXPY(1, Vec{1, 2}) },
		func() { Vec{1}.Dot(Vec{1, 2}) },
		func() { MaxDiff(Vec{1}, Vec{1, 2}) },
		func() { RelErr(Vec{1}, Vec{1, 2}) },
		func() { CopySplit(NewSplit(1), NewSplit(2)) },
		func() { Interleave(New(1), NewSplit(2)) },
		func() { Deinterleave(NewSplit(1), New(2)) },
		func() { MaxDiffSplit(NewSplit(1), NewSplit(2)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic on length mismatch", i)
				}
			}()
			f()
		}()
	}
}

func TestSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := Random(rng, 100)
	s := FromVec(v)
	if s.Len() != 100 {
		t.Fatalf("Split.Len = %d, want 100", s.Len())
	}
	back := s.ToVec()
	if MaxDiff(v, back) != 0 {
		t.Fatal("FromVec/ToVec round trip lost data")
	}
}

func TestSplitAtSetSlice(t *testing.T) {
	s := NewSplit(8)
	s.Set(3, 5+7i)
	if s.At(3) != 5+7i {
		t.Fatalf("At(3) = %v, want 5+7i", s.At(3))
	}
	sub := s.Slice(2, 5)
	if sub.Len() != 3 {
		t.Fatalf("Slice len = %d, want 3", sub.Len())
	}
	if sub.At(1) != 5+7i {
		t.Fatal("Slice does not share storage")
	}
	sub.Set(0, 1i)
	if s.At(2) != 1i {
		t.Fatal("writes through Slice not visible in parent")
	}
}

func TestSplitCloneCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := Random(rng, 20)
	s := FromVec(v)
	c := s.Clone()
	c.Set(0, 99)
	if s.At(0) == 99 {
		t.Fatal("Clone shares storage")
	}
	d := NewSplit(20)
	CopySplit(d, s)
	if MaxDiffSplit(d, s) != 0 {
		t.Fatal("CopySplit mismatch")
	}
}

func TestInterleaveDeinterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := Random(rng, 33)
	s := NewSplit(33)
	Deinterleave(s, v)
	w := New(33)
	Interleave(w, s)
	if MaxDiff(v, w) != 0 {
		t.Fatal("Interleave/Deinterleave round trip lost data")
	}
}

// Property: conversion between layouts is a bijection.
func TestQuickSplitRoundTrip(t *testing.T) {
	f := func(re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		v := make(Vec, n)
		for i := 0; i < n; i++ {
			v[i] = complex(re[i], im[i])
		}
		back := FromVec(v).ToVec()
		for i := range v {
			// NaN-safe bitwise comparison is overkill; quick never
			// generates NaN for float64 by default.
			if v[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: L2 is absolutely homogeneous, |a·v| = |a|·|v|.
func TestQuickL2Homogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(scale float64) bool {
		if math.IsInf(scale, 0) || math.Abs(scale) > 1e100 {
			return true
		}
		v := Random(rng, 64)
		want := v.L2() * math.Abs(scale)
		v.Scale(complex(scale, 0))
		return math.Abs(v.L2()-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
