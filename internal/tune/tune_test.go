package tune

import (
	"bytes"
	"strings"
	"testing"
)

func smallSpace() Space {
	return Space{
		Buffers:      []int{256, 1024},
		WorkerSplits: [][2]int{{1, 1}, {1, 2}},
		Mus:          []int{4},
		SplitFormats: []bool{false, true},
	}
}

func TestTune3DFindsABest(t *testing.T) {
	best, all, err := Tune3D(16, 16, 16, smallSpace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("tried %d candidates, want 8", len(all))
	}
	if best.Seconds <= 0 {
		t.Fatal("best has no time")
	}
	for _, r := range all {
		if r.Seconds < best.Seconds {
			t.Fatal("best is not the minimum")
		}
	}
	if best.Mu != 4 {
		t.Fatalf("unexpected μ %d", best.Mu)
	}
}

func TestTune2DFindsABest(t *testing.T) {
	best, all, err := Tune2D(32, 32, smallSpace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || best.Seconds <= 0 {
		t.Fatal("no results")
	}
}

func TestTuneSkipsInfeasibleMu(t *testing.T) {
	space := smallSpace()
	space.Mus = []int{4, 5} // 5 ∤ 16
	_, all, err := Tune3D(16, 16, 16, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range all {
		if r.Mu == 5 {
			t.Fatal("infeasible μ was measured")
		}
	}
	// Nothing feasible at all:
	space.Mus = []int{5}
	if _, _, err := Tune3D(16, 16, 16, space, 1); err == nil {
		t.Fatal("expected error when no candidate is feasible")
	}
}

func TestDefaultSpace(t *testing.T) {
	s := DefaultSpace(8)
	if len(s.Buffers) == 0 || len(s.WorkerSplits) < 2 || len(s.SplitFormats) != 2 {
		t.Fatalf("space too small: %+v", s)
	}
	s1 := DefaultSpace(1)
	if len(s1.WorkerSplits) == 0 || s1.WorkerSplits[0][0] < 1 {
		t.Fatal("single-thread space invalid")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{BufferElems: 64, DataWorkers: 1, ComputeWorkers: 2, Mu: 4}
	if !strings.Contains(c.String(), "b=64") || !strings.Contains(c.String(), "p_c=2") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestWisdomRoundTrip(t *testing.T) {
	w := NewWisdom()
	c := Candidate{BufferElems: 1 << 14, DataWorkers: 2, ComputeWorkers: 2, Mu: 4, SplitFormat: true}
	w.Put(Key3D(512, 512, 512), c)
	w.Put(Key2D(1024, 1024), Candidate{BufferElems: 1 << 12, DataWorkers: 1, ComputeWorkers: 3, Mu: 4})

	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWisdom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w2.Get(Key3D(512, 512, 512))
	if !ok || got != c {
		t.Fatalf("loaded %+v, want %+v", got, c)
	}
	if len(w2.Keys()) != 2 || w2.Keys()[0] != "2d:1024:1024" {
		t.Fatalf("Keys = %v", w2.Keys())
	}
	if _, ok := w2.Get("3d:1:1:1"); ok {
		t.Fatal("Get returned a missing key")
	}
}

func TestWisdomRejectsCorruption(t *testing.T) {
	if _, err := LoadWisdom(strings.NewReader("{not json")); err == nil {
		t.Fatal("accepted corrupt JSON")
	}
	bad := `{"entries":{"3d:1:1:1":{"buffer_elems":0,"data_workers":1,"compute_workers":1,"mu":4}}}`
	if _, err := LoadWisdom(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted invalid candidate")
	}
	badPolicy := `{"entries":{"3d:1:1:1":{"buffer_elems":64,"data_workers":1,"compute_workers":1,"mu":4,"store_policy":"bogus"}}}`
	if _, err := LoadWisdom(strings.NewReader(badPolicy)); err == nil {
		t.Fatal("accepted invalid store policy")
	}
	empty, err := LoadWisdom(strings.NewReader(`{}`))
	if err != nil || empty.Entries == nil {
		t.Fatal("empty wisdom should load with a usable map")
	}
}

func TestStorePolicyAxis(t *testing.T) {
	space := smallSpace()
	space.SplitFormats = []bool{false}
	space.WorkerSplits = [][2]int{{1, 1}}
	space.Buffers = []int{256}
	space.StorePolicies = []string{"regular", "nt"}
	best, all, err := Tune3D(16, 16, 16, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("tried %d candidates, want 2", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		seen[r.StorePolicy] = true
	}
	if !seen["regular"] || !seen["nt"] {
		t.Fatalf("policies measured: %v", seen)
	}
	if !strings.Contains(best.String(), "store=") {
		t.Fatalf("String lacks store axis: %q", best.String())
	}
	// An unparseable policy is infeasible, not an error.
	space.StorePolicies = []string{"bogus"}
	if _, _, err := Tune3D(16, 16, 16, space, 1); err == nil {
		t.Fatal("expected error when every candidate is infeasible")
	}
}

func TestFuseAxis(t *testing.T) {
	space := smallSpace()
	space.SplitFormats = []bool{false}
	space.WorkerSplits = [][2]int{{1, 1}}
	space.Buffers = []int{256}
	space.Fuses = []string{"on", "off"}
	best, all, err := Tune3D(16, 16, 16, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("tried %d candidates, want 2", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		seen[r.Fuse] = true
	}
	if !seen["on"] || !seen["off"] {
		t.Fatalf("fuse settings measured: %v", seen)
	}
	if !strings.Contains(best.String(), "fuse=") {
		t.Fatalf("String lacks fuse axis: %q", best.String())
	}
	// An unknown fuse value is infeasible, not an error.
	space.Fuses = []string{"sideways"}
	if _, _, err := Tune3D(16, 16, 16, space, 1); err == nil {
		t.Fatal("expected error when every candidate is infeasible")
	}
}

func TestWisdomFuseAndRadix16Validation(t *testing.T) {
	// Radix 16 and every fuse spelling round-trip.
	w := NewWisdom()
	c := Candidate{BufferElems: 1 << 12, DataWorkers: 1, ComputeWorkers: 1, Mu: 4, Radix: 16, Fuse: "off"}
	w.Put(Key2D(256, 256), c)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWisdom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := w2.Get(Key2D(256, 256)); !ok || got != c {
		t.Fatalf("loaded %+v, want %+v", got, c)
	}
	// An unknown fuse value is rejected at load time.
	badFuse := `{"entries":{"2d:4:4":{"buffer_elems":64,"data_workers":1,"compute_workers":1,"mu":4,"fuse":"sideways"}}}`
	if _, err := LoadWisdom(strings.NewReader(badFuse)); err == nil {
		t.Fatal("accepted invalid fuse setting")
	}
}
