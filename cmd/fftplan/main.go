// Command fftplan prints the SPL decomposition, the software-pipelining
// schedule, and the compiled stage graph the library would execute for a
// given 2D/3D size — the formulas of §III, the Table II schedule, and the
// fused cross-stage schedule, instantiated. For sizes small enough to
// build, the plan's actual compiled graph (per-stage geometry, rotation
// shape, step counts and fill overheads) is printed; -trace executes a
// scaled-down transform and renders the recorded fused timeline, stage row
// included.
//
// Usage:
//
//	fftplan -size 512,512,512 -mu 4 -b 131072
//	fftplan -size 1024,2048          # 2D
//	fftplan -size 64,32,32 -trace    # + compiled graph + recorded timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/fft1d"
	"repro/internal/fft2d"
	"repro/internal/fft3d"
	"repro/internal/machine"
	"repro/internal/spl"
	"repro/internal/trace"
)

func main() {
	sizeFlag := flag.String("size", "512,512,512", "comma-separated dimensions: k,n,m (3D) or n,m (2D)")
	mu := flag.Int("mu", 4, "cacheline block size μ in complex elements")
	b := flag.Int("b", 0, "pipeline block size in complex elements (0 = Kaby Lake default LLC/4)")
	demo := flag.Bool("trace", false, "execute a scaled-down transform and print the recorded pipeline timeline")
	flag.Parse()

	dims, err := cli.ParseDims(*sizeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftplan:", err)
		os.Exit(2)
	}
	if *b == 0 {
		*b = machine.KabyLake7700K.DefaultBufferElems()
	}

	switch len(dims) {
	case 2:
		print2D(dims[0], dims[1], *mu, *b)
	case 3:
		print3D(dims[0], dims[1], dims[2], *mu, *b)
	default:
		fmt.Fprintln(os.Stderr, "fftplan: need 2 or 3 dimensions")
		os.Exit(2)
	}
	if *demo {
		if err := printTraceDemo(); err != nil {
			fmt.Fprintln(os.Stderr, "fftplan:", err)
			os.Exit(1)
		}
	}
}

// printTraceDemo runs a small pipelined 3D transform under a tracer and
// renders the recorded Table II timeline.
func printTraceDemo() error {
	tr := trace.New()
	p, err := fft3d.NewPlan(8, 8, 16, fft3d.Options{
		Strategy: fft3d.DoubleBuf, Mu: 4, BufferElems: 128,
		DataWorkers: 1, ComputeWorkers: 1, Tracer: tr,
	})
	if err != nil {
		return err
	}
	x := make([]complex128, p.Len())
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	y := make([]complex128, p.Len())
	if err := p.Transform(y, x, fft1d.Forward); err != nil {
		return err
	}
	fmt.Println("\nRecorded pipeline timeline (8×8×16 demo, all three stages; S=store L=load C=compute):")
	return tr.RenderTimeline(os.Stdout)
}

// describeElems caps the size at which fftplan instantiates a real plan
// just to print its compiled graph (the plan allocates full-size work
// arrays; beyond this the schedule summary is printed instead).
const describeElems = 1 << 22

func print2D(n, m, mu, b int) {
	fmt.Printf("2D FFT %d×%d, μ=%d, b=%d\n\n", n, m, mu, b)
	fmt.Println("Pencil-pencil form:")
	fmt.Println(" ", spl.DFT2D(n, m))
	if m%mu == 0 {
		fmt.Println("\nBlocked double-buffering form (§III-A):")
		fmt.Println(" ", spl.DFT2DBlocked(n, m, mu))
	}
	printSchedule(2, n*m/b)
	if n*m <= describeElems && m%mu == 0 {
		if p, err := fft2d.NewPlan(n, m, fft2d.Options{
			Strategy: fft2d.DoubleBuf, Mu: mu, BufferElems: b,
		}); err == nil {
			printGraph(p.DescribeGraph())
		}
	}
}

func print3D(k, n, m, mu, b int) {
	fmt.Printf("3D FFT %d×%d×%d, μ=%d, b=%d\n\n", k, n, m, mu, b)
	fmt.Println("Pencil-pencil-pencil form:")
	fmt.Println(" ", spl.DFT3D(k, n, m))
	fmt.Println("\nRotation form (every stage contiguous, §III-A):")
	fmt.Println(" ", spl.DFT3DRotated(k, n, m))
	if m%mu == 0 {
		fmt.Println("\nBlocked double-buffering form:")
		fmt.Println(" ", spl.DFT3DBlocked(k, n, m, mu))
	}
	printSchedule(3, k*n*m/b)
	if k*n*m <= describeElems && m%mu == 0 {
		if p, err := fft3d.NewPlan(k, n, m, fft3d.Options{
			Strategy: fft3d.DoubleBuf, Mu: mu, BufferElems: b,
		}); err == nil {
			printGraph(p.DescribeGraph())
		}
	}
}

// printGraph prints the plan's compiled stage graph, indented.
func printGraph(desc string) {
	if desc == "" {
		return
	}
	fmt.Println("\nCompiled stage graph:")
	for _, line := range strings.Split(strings.TrimRight(desc, "\n"), "\n") {
		fmt.Println(" ", line)
	}
}

func printSchedule(stages, iters int) {
	if iters < 1 {
		iters = 1
	}
	fmt.Printf("\nEach stage runs iter = %d pipeline blocks (Table II):\n", iters)
	fmt.Println("  step 0:         load(0)                                  — prologue")
	fmt.Println("  step 1:         load(1)            compute(0)")
	fmt.Printf("  step s:         store(s-2) load(s)  compute(s-1)          — steady state ×%d\n", max(iters-2, 0))
	fmt.Printf("  step %d:%s store(%d)          compute(%d)\n",
		iters, strings.Repeat(" ", 8), iters-2, iters-1)
	fmt.Printf("  step %d:%s store(%d)                                — epilogue\n",
		iters+1, strings.Repeat(" ", 8), iters-1)
	total := stages * iters
	fmt.Printf("\nWhole transform as a fused stage graph (%d stages × %d iterations):\n", stages, iters)
	fmt.Printf("  fused (default): %d steps — steady state flows through stage boundaries,\n", total+stages+1)
	fmt.Printf("                   one fill/drain per transform; overhead %.3f\n",
		float64(total+stages+1)/float64(total))
	fmt.Printf("  unfused:         %d steps — every stage drains; overhead %.3f\n",
		total+2*stages, float64(total+2*stages)/float64(total))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
