package repro

import (
	"fmt"
	"sync"

	"repro/internal/fft1d"
	"repro/internal/fft1dlarge"
	"repro/internal/rfft"
)

// FFT1D is a reusable plan for one-dimensional transforms. Sizes large
// enough to spill the cache run the software-pipelined six-step
// factorization (contiguous row FFTs + block-granular transposes through
// the double buffer); smaller sizes use the in-cache mixed-radix planner
// directly.
type FFT1D struct {
	p         *fft1dlarge.Plan
	release   func()
	closeOnce sync.Once
}

// NewFFT1D builds a 1D plan for size n.
func NewFFT1D(n int, opts ...Option) (*FFT1D, error) {
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	p, err := fft1dlarge.NewPlan(n, fft1dlarge.Options{
		DataWorkers:    cfg.DataWorkers,
		ComputeWorkers: cfg.ComputeWorkers,
		BufferElems:    cfg.BufferElems,
	})
	if err != nil {
		return nil, err
	}
	p.Obs().SetRoofline(cfg.Roofline())
	return &FFT1D{p: p}, nil
}

// Forward computes the unnormalized forward DFT out of place.
func (f *FFT1D) Forward(dst, src []complex128) error {
	return f.p.Transform(dst, src, fft1d.Forward)
}

// Inverse computes the normalized inverse DFT out of place.
func (f *FFT1D) Inverse(dst, src []complex128) error {
	if err := f.p.Transform(dst, src, fft1d.Inverse); err != nil {
		return err
	}
	fft1d.Scale(dst, 1/float64(f.p.N()))
	return nil
}

// Close releases the plan's persistent pipeline workers; optional and
// idempotent (see FFT3D.Close).
func (f *FFT1D) Close() {
	f.closeOnce.Do(func() {
		if f.release != nil {
			f.release()
			return
		}
		f.p.Close()
	})
}

// Len returns the transform size.
func (f *FFT1D) Len() int { return f.p.N() }

// Split returns the six-step factorization (n1, n2), or (n, 1) when the
// plan runs in cache directly.
func (f *FFT1D) Split() (int, int) { return f.p.Split() }

// Observability returns the plan's cumulative bandwidth-accounting
// snapshot; see FFT3D.Observability. Zero value when the plan runs in
// cache directly (no pipeline to observe).
func (f *FFT1D) Observability() Observability { return f.p.Observability() }

// RealFFT3D transforms real k×n×m grids to their Hermitian half spectra
// (k×n×(m/2+1) complex values) and back — the format spectral PDE solvers
// and convolutions over real fields consume, at roughly half the memory
// traffic of a padded complex transform.
type RealFFT3D struct {
	p *rfft.Plan3D
}

// NewRealFFT3D builds a real-input 3D plan; m must be even.
func NewRealFFT3D(k, n, m int) (*RealFFT3D, error) {
	p, err := rfft.NewPlan3D(k, n, m)
	if err != nil {
		return nil, err
	}
	return &RealFFT3D{p}, nil
}

// Forward computes the unnormalized half spectrum; dst must have length
// SpectrumLen(), src length RealLen().
func (f *RealFFT3D) Forward(dst []complex128, src []float64) error {
	return f.p.Forward(dst, src)
}

// Inverse computes the normalized real inverse; src is used as scratch.
func (f *RealFFT3D) Inverse(dst []float64, src []complex128) error {
	return f.p.Inverse(dst, src)
}

// RealLen returns k·n·m.
func (f *RealFFT3D) RealLen() int { return f.p.RealLen() }

// SpectrumLen returns k·n·(m/2+1).
func (f *RealFFT3D) SpectrumLen() int { return f.p.SpectrumLen() }

// Dims returns (k, n, m).
func (f *RealFFT3D) Dims() (int, int, int) { return f.p.Dims() }

// String provides a compact description for logs.
func (f *RealFFT3D) String() string {
	k, n, m := f.p.Dims()
	return fmt.Sprintf("RealFFT3D(%d×%d×%d)", k, n, m)
}
