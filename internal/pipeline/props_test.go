package pipeline

import (
	"testing"
	"testing/quick"
)

// Property: Partition tiles [0, total) exactly, in order, with sizes
// differing by at most one.
func TestQuickPartitionTiles(t *testing.T) {
	f := func(rawTotal uint16, rawWorkers uint8) bool {
		total := int(rawTotal) % 5000
		workers := int(rawWorkers)%32 + 1
		prev := 0
		minSz, maxSz := 1<<30, -1
		for w := 0; w < workers; w++ {
			lo, hi := Partition(total, w, workers)
			if lo != prev || hi < lo {
				return false
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prev = hi
		}
		return prev == total && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PartitionBlocks ranges are block-aligned and tile the total.
func TestQuickPartitionBlocksAligned(t *testing.T) {
	f := func(rawBlocks uint8, rawSize uint8, rawWorkers uint8) bool {
		nblocks := int(rawBlocks) % 200
		size := int(rawSize)%64 + 1
		workers := int(rawWorkers)%16 + 1
		prev := 0
		for w := 0; w < workers; w++ {
			lo, hi := PartitionBlocks(nblocks, size, w, workers)
			if lo != prev || lo%size != 0 || hi%size != 0 {
				return false
			}
			prev = hi
		}
		return prev == nblocks*size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any iteration count and worker mix, the pipeline moves and
// transforms every element exactly once (the memHooks data check).
func TestQuickPipelineCompleteness(t *testing.T) {
	f := func(rawIters, rawPd, rawPc uint8) bool {
		iters := int(rawIters)%12 + 1
		pd := int(rawPd)%3 + 1
		pc := int(rawPc)%3 + 1
		const b = 48
		input := make([]complex128, iters*b)
		for i := range input {
			input[i] = complex(float64(i), 1)
		}
		output := make([]complex128, iters*b)
		var bufs [2][]complex128
		bufs[0] = make([]complex128, b)
		bufs[1] = make([]complex128, b)
		if _, err := Run(Config{Iters: iters, DataWorkers: pd, ComputeWorkers: pc},
			memHooks(input, output, &bufs, b)); err != nil {
			return false
		}
		for i := range output {
			if output[i] != 2*input[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
