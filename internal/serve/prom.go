package serve

import (
	"io"
	"strconv"

	"repro/internal/obs"
)

// WritePrometheus renders the server's counters, queue gauges, plan-cache
// statistics and the request-latency histogram in Prometheus text
// exposition format (version 0.0.4). The histogram's buckets are the
// log₂-nanosecond buckets from metrics, expressed in seconds and scaled
// from the 1-in-8 latency sample back up to the settled-request
// population, so fft_request_duration_seconds_count tracks
// fft_requests_total{result="completed"|"failed"}.
func (s *Server) WritePrometheus(w io.Writer) error {
	snap := s.Stats()
	p := obs.NewPromWriter(w)

	p.Family("fft_requests_total", "Requests by final disposition.", "counter")
	p.Sample("fft_requests_total", float64(snap.Completed), "result", "completed")
	p.Sample("fft_requests_total", float64(snap.Failed), "result", "failed")
	p.Sample("fft_requests_total", float64(snap.Rejected), "result", "rejected")
	p.Sample("fft_requests_total", float64(snap.Cancelled), "result", "cancelled")

	p.Family("fft_requests_submitted_total", "Requests admitted past validation.", "counter")
	p.Sample("fft_requests_submitted_total", float64(snap.Submitted))

	p.Family("fft_batches_total", "Batched pencil executions dispatched.", "counter")
	p.Sample("fft_batches_total", float64(snap.Batches))

	p.Family("fft_batched_items_total", "Requests coalesced into batches.", "counter")
	p.Sample("fft_batched_items_total", float64(snap.BatchedItems))

	p.Family("fft_bytes_moved_total", "Estimated DRAM traffic for completed transforms.", "counter")
	p.Sample("fft_bytes_moved_total", float64(snap.BytesMoved))

	p.Family("fft_plan_executions_total", "Plan executions by pipeline kind (a coalesced batch counts once).", "counter")
	p.Sample("fft_plan_executions_total", float64(snap.ExecutionsComplex), "kind", "complex")
	p.Sample("fft_plan_executions_total", float64(snap.ExecutionsReal), "kind", "real")
	p.Sample("fft_plan_executions_total", float64(snap.ExecutionsSharded), "kind", "shard")

	p.Family("fft_plan_bytes_moved_total", "Request-level DRAM traffic by pipeline kind.", "counter")
	p.Sample("fft_plan_bytes_moved_total", float64(snap.BytesMovedComplex), "kind", "complex")
	p.Sample("fft_plan_bytes_moved_total", float64(snap.BytesMovedReal), "kind", "real")
	p.Sample("fft_plan_bytes_moved_total", float64(snap.BytesMovedSharded), "kind", "shard")

	p.Family("fft_queue_depth", "Requests waiting in the admission queue.", "gauge")
	p.Sample("fft_queue_depth", float64(snap.QueueDepth))

	p.Family("fft_queue_capacity", "Admission queue capacity.", "gauge")
	p.Sample("fft_queue_capacity", float64(snap.QueueCapacity))

	p.Family("fft_healthy", "1 while the server accepts requests, 0 once draining.", "gauge")
	healthy := 0.0
	if snap.Healthy {
		healthy = 1
	}
	p.Sample("fft_healthy", healthy)

	p.Family("fft_plan_cache_entries", "Plans resident in the LRU cache.", "gauge")
	p.Sample("fft_plan_cache_entries", float64(snap.Cache.Len))

	p.Family("fft_plan_cache_capacity", "Plan cache capacity.", "gauge")
	p.Sample("fft_plan_cache_capacity", float64(snap.Cache.Capacity))

	p.Family("fft_plan_cache_hits_total", "Plan cache hits.", "counter")
	p.Sample("fft_plan_cache_hits_total", float64(snap.Cache.Hits))

	p.Family("fft_plan_cache_misses_total", "Plan cache misses.", "counter")
	p.Sample("fft_plan_cache_misses_total", float64(snap.Cache.Misses))

	p.Family("fft_plan_cache_evictions_total", "Plans evicted from the cache.", "counter")
	p.Sample("fft_plan_cache_evictions_total", float64(snap.Cache.Evictions))

	buckets, sumSeconds, count := s.m.latencyScaled()
	p.Family("fft_request_duration_seconds",
		"Queue-to-settlement latency, sampled 1-in-8 and scaled to all settled requests.",
		"histogram")
	// Trailing empty buckets add nothing beyond the +Inf line; stop at the
	// highest occupied one.
	last := -1
	for i, b := range buckets {
		if b > 0 {
			last = i
		}
	}
	var cum float64
	for i := 0; i <= last; i++ {
		cum += buckets[i]
		// Bucket i spans [2^i, 2^(i+1)) ns.
		ub := float64(uint64(1)<<uint(i+1)) / 1e9
		p.Sample("fft_request_duration_seconds_bucket", cum,
			"le", strconv.FormatFloat(ub, 'g', -1, 64))
	}
	p.Sample("fft_request_duration_seconds_bucket", count, "le", "+Inf")
	p.Sample("fft_request_duration_seconds_sum", sumSeconds)
	p.Sample("fft_request_duration_seconds_count", count)

	return p.Err()
}
