package shard

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// CoordinatorOptions configures a shard coordinator.
type CoordinatorOptions struct {
	// Nodes are the fleet's worker base URLs (e.g. "http://host:8123").
	Nodes []string

	// Workers caps how many nodes one transform shards across (0 = all).
	// The effective shard count shrinks to the largest value ≤ the cap
	// that divides both k and n.
	Workers int

	// ChunkElems is the scatter/gather/exchange chunk size in complex
	// elements (default 128Ki = 2 MiB payloads).
	ChunkElems int

	// Mu and Radix pin the fleet's kernel shape (0 = machine defaults);
	// they must match a single node's plan for bitwise-identical results.
	Mu, Radix int

	// Retries is the per-chunk retry budget beyond the first attempt
	// (default 4; -1 disables). Backoff is the initial retry delay,
	// doubling per attempt (default 10ms). /shard/run never retries —
	// it is not idempotent.
	Retries int
	Backoff time.Duration

	Client  Doer
	Metrics *obs.ShardMetrics // default obs.ShardDefault
	Tracer  *trace.Recorder

	// TraceCapacity bounds how many finished transforms' trace records
	// (fleet, clock offsets, coordinator spans) the coordinator retains
	// for WriteMergedTrace (default 32; negative disables tracing).
	TraceCapacity int

	// Logger receives job-level structured logs. nil disables logging.
	Logger *slog.Logger
}

const defaultTraceCapacity = 32

// Coordinator drives sharded transforms over a worker fleet. Safe for
// concurrent use; same-shape transforms serialize on a per-shape lock so
// two jobs can never hold complementary halves of the fleet's warm plans
// (which would deadlock both until their deadlines).
type Coordinator struct {
	opts    CoordinatorOptions
	tr      *transport // retrying: begin/chunk/result/end
	trOnce  *transport // single-attempt: run
	metrics *obs.ShardMetrics
	tracer  *trace.Recorder

	nonce string
	seq   atomic.Uint64

	mu         sync.Mutex
	shapeLocks map[Shape]*sync.Mutex

	// Bounded store of finished transforms' trace records, oldest evicted
	// first; WriteMergedTrace reads it to assemble fleet timelines.
	traceMu    sync.Mutex
	traces     map[string]*traceRecord
	traceOrder []string
	traceCap   int
}

// traceRecord is what the coordinator must remember about one traced
// transform to merge the fleet's timelines after the fact: who took part,
// how far each node's clock was off, and the coordinator's own spans.
type traceRecord struct {
	ID      string
	Shape   Shape
	Fleet   []string
	Offsets []int64 // per fleet member, ns (worker clock − coordinator clock)
	Spans   []trace.Span
	Failed  bool
}

// NewCoordinator builds a coordinator for the given fleet.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one node")
	}
	if opts.ChunkElems <= 0 {
		opts.ChunkElems = defaultChunkElems
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.ShardDefault
	}
	traceCap := opts.TraceCapacity
	if traceCap == 0 {
		traceCap = defaultTraceCapacity
	} else if traceCap < 0 {
		traceCap = 0
	}
	return &Coordinator{
		opts:       opts,
		tr:         newTransport(opts.Client, opts.Retries, opts.Backoff, opts.Metrics),
		trOnce:     newTransport(opts.Client, -1, opts.Backoff, opts.Metrics),
		metrics:    opts.Metrics,
		tracer:     opts.Tracer,
		nonce:      fmt.Sprintf("j%x", time.Now().UnixNano()),
		shapeLocks: make(map[Shape]*sync.Mutex),
		traces:     make(map[string]*traceRecord),
		traceCap:   traceCap,
	}, nil
}

// storeTrace retains one finished transform's trace record, evicting the
// oldest past the capacity.
func (c *Coordinator) storeTrace(rec *traceRecord) {
	if c.traceCap <= 0 || rec.ID == "" {
		return
	}
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	if _, dup := c.traces[rec.ID]; !dup {
		c.traceOrder = append(c.traceOrder, rec.ID)
	}
	c.traces[rec.ID] = rec
	for len(c.traceOrder) > c.traceCap {
		evict := c.traceOrder[0]
		c.traceOrder = c.traceOrder[1:]
		delete(c.traces, evict)
	}
}

// TraceIDs lists the retained trace IDs, oldest first.
func (c *Coordinator) TraceIDs() []string {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return append([]string(nil), c.traceOrder...)
}

// LastTraceID returns the most recently retained trace ID ("" if none).
func (c *Coordinator) LastTraceID() string {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	if len(c.traceOrder) == 0 {
		return ""
	}
	return c.traceOrder[len(c.traceOrder)-1]
}

// WriteMergedTrace gathers every fleet member's slice of one distributed
// trace over /shard/trace?id= and writes the merged Chrome trace_event
// timeline: the coordinator's lane first, then one process lane per
// worker, clock-aligned with the offsets measured at /shard/begin.
func (c *Coordinator) WriteMergedTrace(ctx context.Context, w io.Writer, id string) error {
	c.traceMu.Lock()
	rec := c.traces[id]
	c.traceMu.Unlock()
	if rec == nil {
		return errf(KindProtocol, "trace", "", "unknown trace %q", id)
	}
	nodes := make([]trace.NodeTrace, len(rec.Fleet)+1)
	nodes[0] = trace.NodeTrace{Name: "coordinator", Spans: rec.Spans}
	err := forEach(rec.Fleet, func(i int, node string) error {
		var nt trace.NodeTrace
		url := fmt.Sprintf("%s/shard/trace?id=%s", node, id)
		if err := c.tr.getJSON(ctx, "trace", node, url, &nt); err != nil {
			return err
		}
		nt.Name = fmt.Sprintf("worker %d (%s)", i, node)
		nt.OffsetNS = rec.Offsets[i]
		nodes[i+1] = nt
		return nil
	})
	if err != nil {
		return err
	}
	return trace.WriteChromeNodes(w, nodes)
}

func (c *Coordinator) shapeLock(s Shape) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.shapeLocks[s]
	if l == nil {
		l = &sync.Mutex{}
		c.shapeLocks[s] = l
	}
	return l
}

// ShardCount returns the effective shard count for a shape: the largest
// value ≤ the fleet size (and the Workers cap) dividing both k and n.
func (c *Coordinator) ShardCount(k, n int) int {
	sk := len(c.opts.Nodes)
	if c.opts.Workers > 0 && c.opts.Workers < sk {
		sk = c.opts.Workers
	}
	for sk > 1 && (k%sk != 0 || n%sk != 0) {
		sk--
	}
	return sk
}

// forEach runs f once per fleet member concurrently and returns the
// first error (typed *Error preserved).
func forEach(fleet []string, f func(i int, node string) error) error {
	errs := make([]error, len(fleet))
	var wg sync.WaitGroup
	for i, node := range fleet {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			errs[i] = f(i, node)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scatterStreams bounds how many chunk transfers one worker's scatter or
// gather keeps in flight: enough to pipeline CRC, kernel copies and TCP,
// without swamping a small fleet's listeners.
const scatterStreams = 4

// forEachChunk runs f over [0, total) in chunk-sized spans with at most
// par transfers in flight, returning the first error.
func forEachChunk(total, chunk, par int, f func(off, count int) error) error {
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for off := 0; off < total; off += chunk {
		count := min(chunk, total-off)
		sem <- struct{}{}
		wg.Add(1)
		go func(off, count int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := f(off, count); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(off, count)
	}
	wg.Wait()
	return first
}

// Transform computes dst = DFT_{k×n×m}(src) (sign = fft1d.Forward or
// fft1d.Inverse, unnormalized) across the fleet: begin on every worker,
// scatter input z-slabs, trigger the runs (the W² exchange flows worker
// to worker, overlapped with their compute), gather output y-slabs.
// dst and src must be distinct k·n·m-element slices.
func (c *Coordinator) Transform(ctx context.Context, dst, src []complex128, k, n, m, sign int) error {
	if len(src) != k*n*m || len(dst) != len(src) {
		return errf(KindProtocol, "begin", "", "size mismatch: len(src)=%d len(dst)=%d want %d", len(src), len(dst), k*n*m)
	}
	if sign != -1 && sign != 1 {
		return errf(KindProtocol, "begin", "", "sign must be ±1, got %d", sign)
	}
	mu := c.opts.Mu
	if mu == 0 {
		mu = machine.PreferredMu(m)
	}
	sk := c.ShardCount(k, n)
	g, err := newGeom(k, n, m, sk, mu)
	if err != nil {
		return errf(KindProtocol, "begin", "", "%v", err)
	}
	shape := Shape{k, n, m}
	fleet := FleetOrder(shape, c.opts.Nodes)[:sk]

	lock := c.shapeLock(shape)
	lock.Lock()
	defer lock.Unlock()

	c.metrics.JobsStarted.Add(1)
	c.metrics.LastWorkers.Store(int64(sk))
	jobID := fmt.Sprintf("%s-%d", c.nonce, c.seq.Add(1))
	req := jobReq(jobID)
	var deadlineNano int64
	if dl, ok := ctx.Deadline(); ok {
		deadlineNano = dl.UnixNano()
	}

	// Every sharded transform gets a trace ID: the caller's (propagated
	// from the serving layer via the context) or a fresh one. Worker i's
	// wire requests carry span ID i+1; the coordinator is span 0.
	traceID := ""
	if c.traceCap > 0 {
		traceID = trace.IDFromContext(ctx)
		if traceID == "" {
			traceID = trace.NewTraceID()
		}
	}
	wctx := func(i int) context.Context {
		if traceID == "" {
			return ctx
		}
		return trace.ContextWithSpan(ctx, trace.SpanContext{TraceID: traceID, SpanID: uint64(i + 1)})
	}
	rec := &traceRecord{
		ID: traceID, Shape: shape, Fleet: fleet, Offsets: make([]int64, sk),
	}

	span := func(name string, fn func() error) error {
		t0 := time.Now()
		err := fn()
		s := trace.Span{Req: req, Name: name, Trace: traceID, Start: t0, End: time.Now()}
		if c.tracer != nil {
			c.tracer.EmitSpan(s)
		}
		rec.Spans = append(rec.Spans, s)
		return err
	}
	start := time.Now()
	fail := func(err error) error {
		c.endAll(fleet, jobID)
		c.metrics.JobsFailed.Add(1)
		rec.Failed = true
		c.storeTrace(rec)
		if log := c.opts.Logger; log != nil {
			log.Warn("sharded transform failed", "trace_id", traceID, "job", jobID,
				"shape", shape.String(), "workers", sk, "err", err)
		}
		return err
	}

	// Begin: every worker acquires (or builds) its warm plan. The reply
	// carries the worker's clock; against the round-trip midpoint that
	// estimates its offset, which aligns its lane in the merged trace.
	err = span("shard/begin", func() error {
		return forEach(fleet, func(i int, node string) error {
			spec := JobSpec{
				Job: jobID, K: k, N: n, M: m, Mu: mu, Radix: c.opts.Radix,
				Index: i, Workers: fleet, ChunkElems: c.opts.ChunkElems,
				DeadlineUnixNano: deadlineNano, Trace: traceID,
			}
			var res beginResult
			t0 := time.Now()
			if err := c.tr.postJSONResult(wctx(i), "begin", node, node+"/shard/begin", spec, &res); err != nil {
				return err
			}
			t1 := time.Now()
			if res.NowUnixNano != 0 {
				mid := t0.UnixNano() + (t1.UnixNano()-t0.UnixNano())/2
				rec.Offsets[i] = res.NowUnixNano - mid
			}
			return nil
		})
	})
	if err != nil {
		return fail(err)
	}

	// Scatter: worker i's input is the contiguous z-slab src[i·ksl·n·m:].
	slab := g.slabElems()
	err = span("shard/scatter", func() error {
		return forEach(fleet, func(i int, node string) error {
			base := i * slab
			return forEachChunk(slab, c.opts.ChunkElems, scatterStreams, func(off, count int) error {
				url := fmt.Sprintf("%s/shard/chunk?job=%s&kind=input&off=%d&count=%d", node, jobID, off, count)
				payload := complexBytes(src[base+off : base+off+count])
				if err := c.tr.postChunk(wctx(i), "scatter", node, url, payload); err != nil {
					return err
				}
				c.metrics.ScatterBytes.Add(int64(len(payload)))
				return nil
			})
		})
	})
	if err != nil {
		return fail(err)
	}

	// Run: the exchange flows peer to peer while the fronts compute.
	stats := make([]runStats, sk)
	runStart := time.Now()
	err = span("shard/run", func() error {
		return forEach(fleet, func(i int, node string) error {
			url := fmt.Sprintf("%s/shard/run?job=%s&sign=%d", node, jobID, sign)
			return c.trOnce.postForResult(wctx(i), "run", node, url, &stats[i])
		})
	})
	runWall := time.Since(runStart).Seconds()
	if err != nil {
		return fail(err)
	}
	var exchanged int64
	for _, st := range stats {
		exchanged += st.BytesSent
	}
	if runWall > 0 {
		c.metrics.SetLastExchangeGBs(float64(exchanged) / runWall / 1e9)
	}
	// Straggler ratio: the slowest worker's busy time (front + exposed
	// exchange wait + back) over the fleet mean. The gather cannot start
	// before the slowest worker finishes, so this gap is pure slack.
	var busySum, busyMax float64
	for _, st := range stats {
		busy := float64(st.FrontNS + st.ExchangeWaitNS + st.BackNS)
		busySum += busy
		if busy > busyMax {
			busyMax = busy
		}
	}
	if busySum > 0 {
		c.metrics.SetStragglerRatio(busyMax * float64(sk) / busySum)
	}

	// Gather: worker i's output is the y-slab y ∈ [i·nl, (i+1)·nl),
	// laid out locally as rows (z·nl + yl)·m.
	err = span("shard/gather", func() error {
		return forEach(fleet, func(i int, node string) error {
			return forEachChunk(slab, c.opts.ChunkElems, scatterStreams, func(off, count int) error {
				scratch := getScratch(count)
				defer putScratch(scratch)
				url := fmt.Sprintf("%s/shard/result?job=%s&off=%d&count=%d", node, jobID, off, count)
				if err := c.tr.getChunk(wctx(i), "gather", node, url, complexBytes(scratch[:count])); err != nil {
					return err
				}
				placeSlab(dst, g, i, off, scratch[:count])
				c.metrics.GatherBytes.Add(int64(count) * 16)
				return nil
			})
		})
	})
	if err != nil {
		return fail(err)
	}

	c.endAll(fleet, jobID)
	c.metrics.JobsCompleted.Add(1)
	c.storeTrace(rec)
	if log := c.opts.Logger; log != nil {
		log.Info("sharded transform completed", "trace_id", traceID, "job", jobID,
			"shape", shape.String(), "workers", sk,
			"duration_ms", float64(time.Since(start).Nanoseconds())/1e6,
			"straggler_ratio", c.metrics.StragglerRatio())
	}
	return nil
}

// endAll releases the job on every worker (best effort: workers also
// self-reap at deadline + grace).
func (c *Coordinator) endAll(fleet []string, jobID string) {
	// Ends must land even when the caller's ctx already expired.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	forEach(fleet, func(i int, node string) error {
		return c.tr.postForResult(ctx, "end", node, fmt.Sprintf("%s/shard/end?job=%s", node, jobID), nil)
	})
}

// placeSlab copies a gathered chunk (worker widx's local y-slab offsets
// [off, off+len)) into the full cube: local row (z·nl + yl) is global row
// (z·n + widx·nl + yl), each m elements long.
func placeSlab(dst []complex128, g geom, widx, off int, chunk []complex128) {
	ylo := widx * g.nl
	pos := off
	for len(chunk) > 0 {
		row, rem := pos/g.m, pos%g.m
		z, yl := row/g.nl, row%g.nl
		take := min(g.m-rem, len(chunk))
		base := (z*g.n+ylo+yl)*g.m + rem
		copy(dst[base:base+take], chunk[:take])
		chunk = chunk[take:]
		pos += take
	}
}
