//go:build amd64 && !purego

package cpufeat

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled state mask).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	// AVX (and everything above it) is only usable when the OS saves and
	// restores YMM state: XGETBV(0) must report both XMM (bit 1) and YMM
	// (bit 2) enabled.
	osYMM := false
	if ecx1&cpuidOSXSAVE != 0 {
		lo, _ := xgetbv()
		osYMM = lo&0x6 == 0x6
	}
	X86.HasAVX = osYMM && ecx1&cpuidAVX != 0
	X86.HasFMA = osYMM && ecx1&cpuidFMA != 0
	if maxLeaf >= 7 && X86.HasAVX {
		_, ebx7, _, _ := cpuid(7, 0)
		const cpuidAVX2 = 1 << 5
		X86.HasAVX2 = ebx7&cpuidAVX2 != 0
	}
}
