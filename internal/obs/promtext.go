package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a strict reader for the Prometheus text exposition
// format (version 0.0.4). It exists so the repo can *validate* its own
// hand-written exporters — the obssmoke make target and `fftserved
// -selftest` scrape /metrics and fail the build if the output would not be
// accepted by a real Prometheus scraper (bad names, unescaped labels,
// duplicate series, NaN gauges).

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Series returns the canonical identity of the sample: name plus labels in
// sorted order. Two samples with equal Series strings are duplicates.
func (s Sample) Series() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

var validMetricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// Parse reads an exposition and returns every sample, enforcing the
// format's grammar: metric and label names must match
// [a-zA-Z_:][a-zA-Z0-9_:]*  (labels without the colon), label values must
// use \\, \", \n escapes only, values must parse as Go floats (NaN/±Inf
// spellings included), and # TYPE lines must name a known type.
func Parse(r io.Reader) ([]Sample, error) {
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if err := checkComment(trimmed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// ValidateExposition parses the exposition and additionally rejects
// duplicate series — the condition a Prometheus server turns into a failed
// scrape. It returns the samples on success.
func ValidateExposition(r io.Reader) ([]Sample, error) {
	samples, err := Parse(r)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(samples))
	for _, s := range samples {
		key := s.Series()
		if seen[key] {
			return nil, fmt.Errorf("duplicate series %s", key)
		}
		seen[key] = true
	}
	return samples, nil
}

func checkComment(line string) error {
	// "# HELP name text" and "# TYPE name type" are structured; any other
	// comment is free-form and ignored.
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " \t")
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		if fields[0] == "" || !validMetricName(fields[0]) {
			return fmt.Errorf("HELP with invalid metric name %q", fields[0])
		}
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validMetricName(fields[0]) {
			return fmt.Errorf("TYPE with invalid metric name %q", fields[0])
		}
		if !validMetricTypes[fields[1]] {
			return fmt.Errorf("unknown metric type %q", fields[1])
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0, true) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	// "value" or "value timestamp".
	if len(fields) != 1 && len(fields) != 2 {
		return s, fmt.Errorf("expected value after metric %q", s.Name)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("metric %q: %w", s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("metric %q: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == ',') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		start := i
		for i < len(rest) && isNameChar(rest[i], i == start, false) {
			i++
		}
		name := rest[start:i]
		if name == "" || !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if i >= len(rest) || rest[i] != '=' {
			return nil, "", fmt.Errorf("label %q: expected '='", name)
		}
		i++
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label %q: value must be quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("label %q: unterminated value", name)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(rest) {
					return nil, "", fmt.Errorf("label %q: dangling escape", name)
				}
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %q: bad escape \\%c", name, rest[i])
				}
				i++
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("label %q: raw newline in value", name)
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	// strconv accepts the exposition's NaN/+Inf/-Inf spellings already.
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func isNameChar(c byte, first, allowColon bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c == ':':
		return allowColon
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0, true) {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0, false) {
			return false
		}
	}
	return s != ""
}
