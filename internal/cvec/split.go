package cvec

import "fmt"

// Split is a block-interleaved (split-format) complex vector: the real parts
// of all elements live in Re and the imaginary parts in Im. This is the
// layout the paper's middle compute stages run in, because it lets vector
// kernels consume whole cachelines of reals and whole cachelines of
// imaginaries instead of interleaved pairs.
type Split struct {
	Re []float64
	Im []float64
}

// NewSplit returns a zeroed split vector of length n.
func NewSplit(n int) Split {
	return Split{Re: make([]float64, n), Im: make([]float64, n)}
}

// Len returns the number of complex elements.
func (s Split) Len() int { return len(s.Re) }

// At returns element i as a complex128.
func (s Split) At(i int) complex128 { return complex(s.Re[i], s.Im[i]) }

// Set stores c at index i.
func (s Split) Set(i int, c complex128) {
	s.Re[i] = real(c)
	s.Im[i] = imag(c)
}

// Slice returns the sub-vector [lo, hi) sharing storage with s.
func (s Split) Slice(lo, hi int) Split {
	return Split{Re: s.Re[lo:hi], Im: s.Im[lo:hi]}
}

// Clone returns a deep copy of s.
func (s Split) Clone() Split {
	c := NewSplit(s.Len())
	copy(c.Re, s.Re)
	copy(c.Im, s.Im)
	return c
}

// ToVec converts s to a complex-interleaved vector.
func (s Split) ToVec() Vec {
	v := make(Vec, s.Len())
	for i := range v {
		v[i] = complex(s.Re[i], s.Im[i])
	}
	return v
}

// FromVec converts a complex-interleaved vector to split format.
func FromVec(v Vec) Split {
	s := NewSplit(len(v))
	for i, c := range v {
		s.Re[i] = real(c)
		s.Im[i] = imag(c)
	}
	return s
}

// CopySplit copies src into dst; the lengths must match.
func CopySplit(dst, src Split) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("cvec: CopySplit length mismatch %d != %d", dst.Len(), src.Len()))
	}
	copy(dst.Re, src.Re)
	copy(dst.Im, src.Im)
}

// Interleave writes the complex-interleaved representation of src into dst.
// dst must have length src.Len().
func Interleave(dst Vec, src Split) {
	if len(dst) != src.Len() {
		panic(fmt.Sprintf("cvec: Interleave length mismatch %d != %d", len(dst), src.Len()))
	}
	for i := range dst {
		dst[i] = complex(src.Re[i], src.Im[i])
	}
}

// Deinterleave writes the split representation of src into dst.
// dst must have length len(src).
func Deinterleave(dst Split, src Vec) {
	if dst.Len() != len(src) {
		panic(fmt.Sprintf("cvec: Deinterleave length mismatch %d != %d", dst.Len(), len(src)))
	}
	for i, c := range src {
		dst.Re[i] = real(c)
		dst.Im[i] = imag(c)
	}
}

// MaxDiffSplit returns the maximum elementwise modulus difference between a
// and b, which must have equal length.
func MaxDiffSplit(a, b Split) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("cvec: MaxDiffSplit length mismatch %d != %d", a.Len(), b.Len()))
	}
	var m float64
	for i := range a.Re {
		if d := cmplxAbs(complex(a.Re[i]-b.Re[i], a.Im[i]-b.Im[i])); d > m {
			m = d
		}
	}
	return m
}
