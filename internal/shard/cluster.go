package shard

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Cluster is an in-process loopback fleet: N workers, each behind its own
// localhost HTTP server, plus a coordinator addressing them — the test,
// selftest and benchmark harness for the shard tier (and a one-box demo
// of the real deployment, which runs the same handlers inside fftserved).
type Cluster struct {
	Workers []*Worker
	Coord   *Coordinator
	servers []*http.Server
	urls    []string
}

// StartCluster boots n loopback workers and a coordinator over them.
func StartCluster(n int, wopts WorkerOptions, copts CoordinatorOptions) (*Cluster, error) {
	cl := &Cluster{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, err
		}
		w := NewWorker(wopts)
		srv := &http.Server{Handler: w.Handler()}
		go srv.Serve(ln)
		cl.Workers = append(cl.Workers, w)
		cl.servers = append(cl.servers, srv)
		cl.urls = append(cl.urls, "http://"+ln.Addr().String())
	}
	copts.Nodes = cl.urls
	coord, err := NewCoordinator(copts)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.Coord = coord
	return cl, nil
}

// URLs returns the worker base URLs.
func (cl *Cluster) URLs() []string { return cl.urls }

// Close drains the workers and shuts the servers down.
func (cl *Cluster) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, w := range cl.Workers {
		w.Drain(ctx)
	}
	for _, srv := range cl.servers {
		srv.Shutdown(ctx)
	}
	for _, w := range cl.Workers {
		w.Close()
	}
}

// String describes the cluster for logs.
func (cl *Cluster) String() string {
	return fmt.Sprintf("loopback cluster: %d workers", len(cl.Workers))
}
