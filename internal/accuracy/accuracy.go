// Package accuracy characterizes the numerical error of the fast
// transforms against a compensated-summation direct DFT oracle, in the
// tradition of FFTW's published accuracy benchmarks. Cooley–Tukey FFTs on
// random data should show L2 relative error growing like O(√log n)·ε; a
// defect in twiddle generation or butterfly algebra shows up as a much
// faster growth, so the suite doubles as a regression tripwire.
package accuracy

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"repro/internal/fft1d"
	"repro/internal/twiddle"
)

// oracleDFT computes the direct DFT with Kahan-compensated accumulation of
// the real and imaginary parts, giving an oracle roughly an order of
// magnitude more accurate than naive summation.
func oracleDFT(x []complex128, sign int) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sumR, sumI, compR, compI float64
		for l := 0; l < n; l++ {
			w := twiddle.Omega(n, k*l)
			if sign == fft1d.Inverse {
				w = complex(real(w), -imag(w))
			}
			p := w * x[l]
			// Kahan step for each component.
			tR := sumR + (real(p) - compR)
			compR = (tR - sumR) - (real(p) - compR)
			sumR = tR
			tI := sumI + (imag(p) - compI)
			compI = (tI - sumI) - (imag(p) - compI)
			sumI = tI
		}
		y[k] = complex(sumR, sumI)
	}
	return y
}

// RelErr1D returns the L2 relative error of the fast 1D transform against
// the compensated oracle on deterministic pseudo-random input.
func RelErr1D(n int) float64 {
	rng := rand.New(rand.NewSource(int64(n)*2654435761 + 1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	want := oracleDFT(x, fft1d.Forward)
	got := make([]complex128, n)
	fft1d.NewPlan(n).Transform(got, x, fft1d.Forward)

	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(want[i])*real(want[i]) + imag(want[i])*imag(want[i])
	}
	return math.Sqrt(num / den)
}

// Bound returns the acceptance threshold used by the tests and the report:
// C·√(log2 n)·ε with a generous constant.
func Bound(n int) float64 {
	const c = 48
	l := math.Log2(float64(n))
	if l < 1 {
		l = 1
	}
	return c * math.Sqrt(l) * 0x1p-52
}

// Report prints relative error against the bound for each size.
func Report(w io.Writer, sizes []int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\talgorithm\trel L2 error\tbound\tok")
	for _, n := range sizes {
		err := RelErr1D(n)
		b := Bound(n)
		fmt.Fprintf(tw, "%d\t%s\t%.2e\t%.2e\t%v\n",
			n, fft1d.NewPlan(n).Kind(), err, b, err <= b)
	}
	tw.Flush()
}
