package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// syncWriter serializes concurrent handler writes (settle runs on executor
// goroutines) so the test can read whole lines back.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRequestLogging: failures log at Warn with the request's shape and
// trace ID; successes appear (sampled) at Debug.
func TestRequestLogging(t *testing.T) {
	var out syncWriter
	logger := slog.New(slog.NewJSONHandler(&out, &slog.HandlerOptions{Level: slog.LevelDebug}))

	s := New(Options{Logger: logger})
	defer s.Shutdown(context.Background())

	// A sharded request with no ShardRunner configured fails at execution,
	// which is exactly the Warn path.
	n := 8
	src := make([]complex128, n*n*n)
	dst := make([]complex128, n*n*n)
	ctx := trace.ContextWithID(context.Background(), "t-log-test")
	err := s.Do(ctx, Request{Rank: 3, Dims: [3]int{n, n, n}, Sharded: true, Src: src, Dst: dst})
	if err == nil {
		t.Fatal("sharded request without a ShardRunner should fail")
	}

	// Enough successes that the 1-in-8 sampling fires at least once.
	one := []complex128{1, 2, 3, 4}
	res := make([]complex128, 4)
	for i := 0; i < 32; i++ {
		if err := s.Do(context.Background(), Request{Rank: 1, Dims: [3]int{4}, Src: one, Dst: res}); err != nil {
			t.Fatalf("rank-1 request %d: %v", i, err)
		}
	}

	var sawWarn, sawDebug bool
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		switch entry["level"] {
		case "WARN":
			if entry["msg"] != "fft request failed" {
				continue
			}
			sawWarn = true
			if entry["trace_id"] != "t-log-test" {
				t.Fatalf("failure log trace_id = %v, want t-log-test", entry["trace_id"])
			}
			if entry["dims"] != "8x8x8" {
				t.Fatalf("failure log dims = %v, want 8x8x8", entry["dims"])
			}
		case "DEBUG":
			if entry["msg"] == "fft request done" {
				sawDebug = true
			}
		}
	}
	if !sawWarn {
		t.Fatal("no Warn log for the failed request")
	}
	if !sawDebug {
		t.Fatal("no sampled Debug log across 32 successful requests")
	}
}
