// Package memsim is a discrete-event simulator of the paper's pipelined
// stages over shared machine resources. Where internal/perfmodel evaluates
// closed-form expressions (max of data/link/compute time per stage with a
// fill factor), memsim actually plays out the Table II schedule event by
// event: load, compute and store tasks acquire bandwidth from shared DRAM,
// link and compute resources, and the stage time emerges from the
// simulation. The two estimates are produced independently, so their
// agreement (tested in this package and recorded in EXPERIMENTS.md) is
// evidence the figure regenerations aren't an artifact of one model's
// simplifications.
package memsim

import (
	"fmt"
	"math"
)

// Resource is a shared throughput resource (DRAM bandwidth, link bandwidth,
// compute). Concurrent demands divide its capacity equally (processor
// sharing) — the standard fluid model for bandwidth-bound streams.
type Resource struct {
	Name     string
	Capacity float64 // units/second (bytes/s or flops/s)
	active   map[*Task]struct{}
}

// NewResource creates a resource with the given capacity.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("memsim: resource %q capacity %v", name, capacity))
	}
	return &Resource{Name: name, Capacity: capacity, active: make(map[*Task]struct{})}
}

// rate returns the per-task share.
func (r *Resource) rate() float64 {
	if len(r.active) == 0 {
		return r.Capacity
	}
	return r.Capacity / float64(len(r.active))
}

// Task is one unit of work consuming a fixed amount of one resource.
type Task struct {
	Name     string
	Resource *Resource
	Units    float64 // bytes or flops
	remain   float64
	done     bool
}

// Engine advances a set of running tasks through fluid time.
type Engine struct {
	now     float64
	running []*Task
}

// Now returns the simulation clock in seconds.
func (e *Engine) Now() float64 { return e.now }

// Start begins executing a task; it runs concurrently with every other
// running task, sharing its resource.
func (e *Engine) Start(t *Task) {
	if t.done || t.remain > 0 {
		panic(fmt.Sprintf("memsim: task %q started twice", t.Name))
	}
	t.remain = t.Units
	if t.Units <= 0 {
		t.done = true
		return
	}
	t.Resource.active[t] = struct{}{}
	e.running = append(e.running, t)
}

// WaitAll advances time until every given task has finished (tasks not in
// the list keep making progress too).
func (e *Engine) WaitAll(tasks ...*Task) {
	pending := func() bool {
		for _, t := range tasks {
			if !t.done {
				return true
			}
		}
		return false
	}
	for pending() {
		e.step()
	}
}

// step advances to the next task completion.
func (e *Engine) step() {
	if len(e.running) == 0 {
		return
	}
	// Find the earliest finishing task under current rates.
	dt := math.Inf(1)
	for _, t := range e.running {
		rate := t.Resource.rate()
		if d := t.remain / rate; d < dt {
			dt = d
		}
	}
	// Advance everyone by dt.
	e.now += dt
	var still []*Task
	for _, t := range e.running {
		t.remain -= t.Resource.rate() * dt
		if t.remain <= 1e-12 {
			t.done = true
			delete(t.Resource.active, t)
		} else {
			still = append(still, t)
		}
	}
	e.running = still
}
