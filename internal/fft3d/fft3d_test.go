package fft3d

import (
	"math/rand"
	"testing"

	"repro/internal/cvec"
	"repro/internal/fft1d"
	"repro/internal/spl"
	"repro/internal/trace"
)

const tol = 1e-9

func randVec(seed int64, n int) []complex128 {
	return cvec.Random(rand.New(rand.NewSource(seed)), n)
}

func TestReferenceMatchesSPL(t *testing.T) {
	for _, c := range []struct{ k, n, m int }{
		{1, 1, 1}, {2, 2, 2}, {2, 4, 8}, {4, 2, 4}, {3, 2, 5},
	} {
		p, err := NewPlan(c.k, c.n, c.m, Options{Strategy: Reference})
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(int64(c.k*c.n*c.m), c.k*c.n*c.m)
		got := make([]complex128, len(x))
		if err := p.Transform(got, x, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		want := spl.Eval(spl.DFT3D(c.k, c.n, c.m), x)
		if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(len(x)) {
			t.Errorf("reference %dx%dx%d: diff %g", c.k, c.n, c.m, d)
		}
	}
}

func strategyCase(t *testing.T, k, n, m int, opts Options, sign int) {
	t.Helper()
	ref, _ := NewPlan(k, n, m, Options{Strategy: Reference})
	p, err := NewPlan(k, n, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(int64(k*100+n*10+m+sign), k*n*m)
	want := make([]complex128, len(x))
	got := make([]complex128, len(x))
	if err := ref.Transform(want, x, sign); err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(got, x, sign); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(k*n*m) {
		t.Errorf("%v %dx%dx%d (opts %+v): diff %g", opts.Strategy, k, n, m, opts, d)
	}
}

func TestPencilMatchesReference(t *testing.T) {
	strategyCase(t, 4, 4, 4, Options{Strategy: Pencil}, fft1d.Forward)
	strategyCase(t, 8, 8, 8, Options{Strategy: Pencil, Workers: 3}, fft1d.Forward)
	strategyCase(t, 2, 8, 16, Options{Strategy: Pencil, Workers: 2}, fft1d.Inverse)
	strategyCase(t, 5, 3, 6, Options{Strategy: Pencil, Workers: 4}, fft1d.Forward)
}

func TestSlabMatchesReference(t *testing.T) {
	strategyCase(t, 4, 8, 8, Options{Strategy: Slab}, fft1d.Forward)
	strategyCase(t, 8, 4, 16, Options{Strategy: Slab, Workers: 3}, fft1d.Forward)
	strategyCase(t, 2, 16, 8, Options{Strategy: Slab, Workers: 2}, fft1d.Inverse)
}

func TestDoubleBufMatchesReference(t *testing.T) {
	for _, c := range []struct {
		k, n, m, mu, b, pd, pc int
	}{
		{4, 4, 4, 4, 16, 1, 1},
		{8, 8, 8, 4, 64, 1, 1},
		{8, 8, 8, 4, 64, 2, 2},
		{16, 8, 32, 8, 256, 2, 3},
		{4, 16, 16, 4, 1 << 20, 1, 1}, // one block per stage
		{2, 4, 8, 4, 8, 1, 1},         // minimal blocks, many iterations
		{16, 16, 16, 16, 512, 3, 2},   // μ = m/1? μ=16=m
	} {
		strategyCase(t, c.k, c.n, c.m, Options{
			Strategy: DoubleBuf, Mu: c.mu, BufferElems: c.b,
			DataWorkers: c.pd, ComputeWorkers: c.pc,
		}, fft1d.Forward)
	}
}

func TestDoubleBufSplitMatchesReference(t *testing.T) {
	for _, c := range []struct {
		k, n, m, mu, b, pd, pc int
	}{
		{8, 8, 8, 4, 64, 1, 1},
		{8, 16, 16, 4, 256, 2, 2},
		{16, 8, 32, 8, 512, 2, 3},
	} {
		strategyCase(t, c.k, c.n, c.m, Options{
			Strategy: DoubleBuf, Mu: c.mu, BufferElems: c.b,
			DataWorkers: c.pd, ComputeWorkers: c.pc, SplitFormat: true,
		}, fft1d.Forward)
	}
}

func TestDoubleBufInverseAndRoundTrip(t *testing.T) {
	strategyCase(t, 8, 8, 8, Options{Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2}, fft1d.Inverse)
	strategyCase(t, 8, 8, 8, Options{Strategy: DoubleBuf, SplitFormat: true}, fft1d.Inverse)

	const k, n, m = 16, 16, 16
	p, err := NewPlan(k, n, m, Options{Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(55, k*n*m)
	y := make([]complex128, len(x))
	z := make([]complex128, len(x))
	if err := p.Transform(y, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(z, y, fft1d.Inverse); err != nil {
		t.Fatal(err)
	}
	fft1d.Scale(z, 1/float64(k*n*m))
	if d := cvec.MaxDiff(cvec.Vec(z), cvec.Vec(x)); d > tol {
		t.Fatalf("round trip diff %g", d)
	}
}

func TestInPlaceAllStrategies(t *testing.T) {
	const k, n, m = 8, 8, 8
	ref, _ := NewPlan(k, n, m, Options{Strategy: Reference})
	x := randVec(66, k*n*m)
	want := make([]complex128, len(x))
	if err := ref.Transform(want, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Reference, Pencil, Slab, DoubleBuf} {
		p, err := NewPlan(k, n, m, Options{Strategy: s, Workers: 2, DataWorkers: 2, ComputeWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := p.InPlace(got, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(k*n*m) {
			t.Errorf("%v InPlace: diff %g", s, d)
		}
	}
}

func TestNonCubicSizes(t *testing.T) {
	// The paper's Fig. 1 sweeps non-cubic 2^k×2^n×2^m shapes.
	for _, c := range []struct{ k, n, m int }{
		{4, 8, 16}, {16, 8, 4}, {8, 16, 4}, {32, 4, 8},
	} {
		strategyCase(t, c.k, c.n, c.m, Options{
			Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2, BufferElems: 128,
		}, fft1d.Forward)
	}
}

func TestStageIters(t *testing.T) {
	p, err := NewPlan(8, 8, 8, Options{Strategy: DoubleBuf, Mu: 4, BufferElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, s3 := p.StageIters()
	// Capacity alone would allow 64/8 = 8 rows per stage-1 block (8 iters),
	// but the pipeline-depth floor caps blocks at 64/minStageIters = 7
	// units, rounded down to the divisor 4 — 16 iterations per stage.
	// Stages 2 and 3 (extent mb·k = 16) land on 16/9 → 1-unit blocks.
	if s1 != 16 || s2 != 16 || s3 != 16 {
		t.Fatalf("StageIters = %d,%d,%d, want 16,16,16", s1, s2, s3)
	}
	ref, _ := NewPlan(4, 4, 4, Options{Strategy: Reference})
	if a, b, c := ref.StageIters(); a != 0 || b != 0 || c != 0 {
		t.Fatal("non-DoubleBuf plans should report zero iters")
	}
}

func TestDoubleBufScheduleTrace(t *testing.T) {
	tr := trace.New()
	p, err := NewPlan(8, 8, 8, Options{
		Strategy: DoubleBuf, Mu: 4, BufferElems: 128,
		DataWorkers: 2, ComputeWorkers: 2, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(9, 512)
	y := make([]complex128, 512)
	if err := p.Transform(y, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no pipeline events recorded")
	}
	var loads, computes, stores int
	for _, e := range evs {
		switch e.Op {
		case trace.Load:
			loads++
		case trace.Compute:
			computes++
		case trace.Store:
			stores++
		}
	}
	if loads == 0 || computes == 0 || stores == 0 {
		t.Fatalf("missing op kinds: %d/%d/%d", loads, computes, stores)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewPlan(0, 4, 4, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewPlan(4, 4, 6, Options{Strategy: DoubleBuf, Mu: 4}); err == nil {
		t.Error("accepted μ∤m")
	}
	p, _ := NewPlan(4, 4, 4, Options{})
	if err := p.Transform(make([]complex128, 63), make([]complex128, 64), fft1d.Forward); err == nil {
		t.Error("accepted bad lengths")
	}
	if err := p.InPlace(make([]complex128, 63), fft1d.Forward); err == nil {
		t.Error("accepted bad InPlace length")
	}
	if k, n, m := p.Dims(); k != 4 || n != 4 || m != 4 {
		t.Error("Dims wrong")
	}
	if p.Len() != 64 {
		t.Error("Len wrong")
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		Reference: "reference", Pencil: "pencil", Slab: "slab", DoubleBuf: "doublebuf",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

// Property: linearity of the full 3D transform through the DoubleBuf path.
func TestDoubleBufLinearity(t *testing.T) {
	const k, n, m = 8, 8, 8
	p, err := NewPlan(k, n, m, Options{Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	x := cvec.Random(rng, k*n*m)
	y := cvec.Random(rng, k*n*m)
	a := complex(1.5, -0.5)
	z := make([]complex128, len(x))
	for i := range z {
		z[i] = a*x[i] + y[i]
	}
	fx := make([]complex128, len(x))
	fy := make([]complex128, len(x))
	fz := make([]complex128, len(x))
	for _, pair := range []struct {
		in  []complex128
		out []complex128
	}{{x, fx}, {y, fy}, {z, fz}} {
		if err := p.Transform(pair.out, pair.in, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
	}
	for i := range fz {
		fx[i] = a*fx[i] + fy[i]
	}
	if d := cvec.MaxDiff(cvec.Vec(fz), cvec.Vec(fx)); d > tol*float64(k*n*m) {
		t.Fatalf("linearity violated: %g", d)
	}
}

func benchStrategy(b *testing.B, opts Options, k, n, m int) {
	p, err := NewPlan(k, n, m, opts)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(1, k*n*m)
	y := make([]complex128, k*n*m)
	b.SetBytes(int64(k * n * m * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Transform(y, x, fft1d.Forward); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompositions(b *testing.B) {
	const k, n, m = 64, 64, 64
	b.Run("pencil", func(b *testing.B) {
		benchStrategy(b, Options{Strategy: Pencil, Workers: 2}, k, n, m)
	})
	b.Run("slab", func(b *testing.B) {
		benchStrategy(b, Options{Strategy: Slab, Workers: 2}, k, n, m)
	})
	b.Run("doublebuf", func(b *testing.B) {
		benchStrategy(b, Options{Strategy: DoubleBuf, DataWorkers: 1, ComputeWorkers: 1, BufferElems: 1 << 14}, k, n, m)
	})
	b.Run("doublebuf-split", func(b *testing.B) {
		benchStrategy(b, Options{Strategy: DoubleBuf, DataWorkers: 1, ComputeWorkers: 1, BufferElems: 1 << 14, SplitFormat: true}, k, n, m)
	})
}

func BenchmarkBufferSweep(b *testing.B) {
	const k, n, m = 64, 64, 64
	for _, be := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		name := map[int]string{1 << 10: "b1Ki", 1 << 12: "b4Ki", 1 << 14: "b16Ki", 1 << 16: "b64Ki"}[be]
		b.Run(name, func(b *testing.B) {
			benchStrategy(b, Options{Strategy: DoubleBuf, BufferElems: be}, k, n, m)
		})
	}
}

func BenchmarkThreadSplit(b *testing.B) {
	const k, n, m = 64, 64, 64
	for _, c := range []struct {
		name   string
		pd, pc int
	}{{"1d1c", 1, 1}, {"1d3c", 1, 3}, {"2d2c", 2, 2}, {"3d1c", 3, 1}} {
		b.Run(c.name, func(b *testing.B) {
			benchStrategy(b, Options{
				Strategy: DoubleBuf, DataWorkers: c.pd, ComputeWorkers: c.pc,
				BufferElems: 1 << 14,
			}, k, n, m)
		})
	}
}
