// Package fft1dlarge applies the paper's double-buffering machinery to
// large one-dimensional FFTs via the six-step (Bailey) factorization.
//
// The paper's earlier SPIRAL work targeted medium 1D FFTs without
// compute/communication overlap (§V); this package is the natural
// extension: split N = n1·n2 and use the transposed Cooley–Tukey form
//
//	DFT_N = L_{n1}^{N} (I_{n2} ⊗ DFT_{n1}) L_{n2}^{N} D_{n2}^{N} (I_{n1} ⊗ DFT_{n2}) L_{n1}^{N},
//
// in which every FFT runs over contiguous rows and all data movement is
// three stride permutations. Each permutation executes as a pipelined
// stage: data workers stream whole rows into the double buffer, compute
// workers run the batched row FFTs (plus the twiddle scaling), the row
// group is transposed in cache, and the store writes whole column blocks —
// so main memory sees only contiguous reads and block-granular writes,
// the same access discipline as the paper's multi-dimensional stages.
package fft1dlarge

import (
	"fmt"

	"repro/internal/fft1d"
	"repro/internal/pipeline"
	"repro/internal/twiddle"
)

// Options size the pipeline.
type Options struct {
	// DataWorkers / ComputeWorkers as in the multi-dimensional plans.
	DataWorkers    int
	ComputeWorkers int
	// BufferElems is the per-half block size (default 1<<15).
	BufferElems int
	// MinN is the size below which the plan falls back to the plain
	// in-cache 1D FFT (default 1<<12 — smaller transforms fit in cache
	// and gain nothing from streaming).
	MinN int
}

func (o Options) withDefaults() Options {
	if o.DataWorkers == 0 {
		o.DataWorkers = 1
	}
	if o.ComputeWorkers == 0 {
		o.ComputeWorkers = 1
	}
	if o.BufferElems == 0 {
		o.BufferElems = 1 << 15
	}
	if o.MinN == 0 {
		o.MinN = 1 << 12
	}
	return o
}

// Plan is a reusable large-1D FFT plan.
type Plan struct {
	n      int
	n1, n2 int         // n = n1·n2
	direct *fft1d.Plan // small-n fallback
	p1, p2 *fft1d.Plan

	opts Options

	w1, w2 []complex128    // full-size intermediates
	bufs   [2][]complex128 // pipeline halves (load target / compute)
	tbufs  [2][]complex128 // transposed halves (store source)
}

// NewPlan builds a large-1D plan for size n ≥ 1.
func NewPlan(n int, opts Options) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft1dlarge: invalid size %d", n)
	}
	opts = opts.withDefaults()
	p := &Plan{n: n, opts: opts}
	n1, n2 := split(n)
	if n < opts.MinN || n2 == 1 {
		p.direct = fft1d.NewPlan(n)
		return p, nil
	}
	p.n1, p.n2 = n1, n2
	p.p1 = fft1d.NewPlan(n1)
	p.p2 = fft1d.NewPlan(n2)
	p.w1 = make([]complex128, n)
	p.w2 = make([]complex128, n)
	// Each half must hold at least one row of the wider stage.
	b := opts.BufferElems
	if b < n1 {
		b = n1
	}
	if b > n {
		b = n
	}
	for h := 0; h < 2; h++ {
		p.bufs[h] = make([]complex128, b)
		p.tbufs[h] = make([]complex128, b)
	}
	return p, nil
}

// split returns a balanced factorization n = n1·n2 with n1 ≥ n2 and n2 as
// large as possible; (n, 1) when n is prime.
func split(n int) (int, int) {
	n1, n2 := n, 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			n1, n2 = n/d, d
		}
	}
	return n1, n2
}

// N returns the transform size.
func (p *Plan) N() int { return p.n }

// Split returns the factorization (n1, n2); (n, 1) for the direct fallback.
func (p *Plan) Split() (int, int) {
	if p.direct != nil {
		return p.n, 1
	}
	return p.n1, p.n2
}

// Direct reports whether the plan fell back to the in-cache 1D FFT.
func (p *Plan) Direct() bool { return p.direct != nil }

// Transform computes dst = DFT_n(src), unnormalized, out of place. dst and
// src must not overlap.
func (p *Plan) Transform(dst, src []complex128, sign int) error {
	if len(dst) != p.n || len(src) != p.n {
		return fmt.Errorf("fft1dlarge: lengths dst=%d src=%d, want %d", len(dst), len(src), p.n)
	}
	if p.direct != nil {
		p.direct.Transform(dst, src, sign)
		return nil
	}
	// Stage 1: w1 = L_{n1}^{N} src (transpose n2×n1 → n1×n2, no compute).
	if err := p.transposeStage(p.w1, src, p.n2, p.n1, nil, sign, false); err != nil {
		return err
	}
	// Stage 2: w2 = L_{n2}^{N} D_{n2}^{N} (I_{n1} ⊗ DFT_{n2}) w1
	// (row FFTs of length n2 with twiddles, transpose n1×n2 → n2×n1).
	if err := p.transposeStage(p.w2, p.w1, p.n1, p.n2, p.p2, sign, true); err != nil {
		return err
	}
	// Stage 3: dst = L_{n1}^{N} (I_{n2} ⊗ DFT_{n1}) w2
	// (row FFTs of length n1, transpose n2×n1 → n1×n2: natural order).
	return p.transposeStage(dst, p.w2, p.n2, p.n1, p.p1, sign, false)
}

// transposeStage runs one pipelined pass over the rows×cols row-major
// matrix src: load contiguous row groups, optionally apply rowPlan to every
// row (scaling row j by ω_N^{j·i} when twiddles is set), transpose the
// group in cache, and store whole column blocks into the cols×rows matrix
// dst.
func (p *Plan) transposeStage(dst, src []complex128, rows, cols int, rowPlan *fft1d.Plan, sign int, twiddles bool) error {
	b := len(p.bufs[0])
	rPer := largestDivisorAtMost(rows, maxI(b/cols, 1))
	blk := rPer * cols
	iters := rows / rPer

	h := pipeline.Hooks{
		Load: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.PartitionBlocks(rPer, cols, worker, workers)
			copy(p.bufs[buf][lo:hi], src[iter*blk+lo:iter*blk+hi])
		},
		Compute: func(iter, buf, worker, workers int) {
			half := p.bufs[buf][:blk]
			thalf := p.tbufs[buf][:blk]
			lo, hi := pipeline.Partition(rPer, worker, workers)
			for r := lo; r < hi; r++ {
				row := half[r*cols : (r+1)*cols]
				if rowPlan != nil {
					rowPlan.InPlace(row, sign)
					if twiddles {
						twiddleRow(row, iter*rPer+r, p.n, sign)
					}
				}
				// Transpose this row into the column-major half.
				for c := 0; c < cols; c++ {
					thalf[c*rPer+r] = row[c]
				}
			}
		},
		Store: func(iter, buf, worker, workers int) {
			// Column c's rPer elements land at dst[c·rows + iter·rPer]:
			// one contiguous block per column.
			thalf := p.tbufs[buf][:blk]
			lo, hi := pipeline.Partition(cols, worker, workers)
			base := iter * rPer
			for c := lo; c < hi; c++ {
				copy(dst[c*rows+base:c*rows+base+rPer], thalf[c*rPer:(c+1)*rPer])
			}
		},
	}
	cfg := pipeline.Config{
		Iters:          iters,
		DataWorkers:    p.opts.DataWorkers,
		ComputeWorkers: p.opts.ComputeWorkers,
	}
	_, err := pipeline.Run(cfg, h)
	return err
}

// twiddleRow scales row j by ω_N^{j·i} for i = 0..len-1 (conjugated for the
// inverse), using a multiplicative recurrence resynchronized from the exact
// table every 64 steps so no full-size twiddle array is needed.
func twiddleRow(row []complex128, j, n, sign int) {
	if j == 0 {
		return
	}
	ws := twiddle.Omega(n, j)
	if sign == fft1d.Inverse {
		ws = complex(real(ws), -imag(ws))
	}
	w := complex(1, 0)
	for i := 1; i < len(row); i++ {
		if i&63 == 0 {
			w = twiddle.Omega(n, (j*i)%n)
			if sign == fft1d.Inverse {
				w = complex(real(w), -imag(w))
			}
		} else {
			w *= ws
		}
		row[i] *= w
	}
}

func largestDivisorAtMost(n, cap int) int {
	if cap >= n {
		return n
	}
	for d := cap; d >= 1; d-- {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
