# Developer entry points. Everything is stdlib-only Go; `make ci` is the
# gate run before merging.

GO ?= go

# Packages whose tests exercise real concurrency (worker pools, barriers,
# shared plans); they get a dedicated -race pass in ci.
RACE_PKGS = . ./internal/pipeline ./internal/stagegraph ./internal/fft2d \
            ./internal/fft3d ./internal/fft1dlarge

.PHONY: ci vet build test race bench benchsmoke fmt

ci: vet build test race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One-iteration pass over the transform benchmarks: catches benchmarks that
# no longer compile or crash without paying for a timed run.
benchsmoke:
	$(GO) test -run=NONE -bench='Fig|Table|PublicAPI|StageFusion' -benchtime=1x -benchmem .

fmt:
	gofmt -l .
