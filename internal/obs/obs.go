// Package obs is the always-on bandwidth-accounting telemetry layer. The
// paper states its whole claim in observability terms — fraction of the
// machine's achievable STREAM peak sustained per stage (Figs. 1, 9–11) — so
// every stage-graph executor carries a Collector that attributes, per stage:
// bytes loaded and stored, worker-summed op time, effective GB/s, fraction
// of the active machine description's STREAM peak, steady-state overlap
// occupancy (the fraction of schedule steps in which data and compute were
// simultaneously busy), and cumulative worker barrier-wait time. Each is
// comparable against internal/perfmodel's per-stage prediction, so a
// degenerate schedule shows up as measured/predicted divergence rather than
// merely slow ns/op.
//
// The hot path is lock-free: every worker owns a padded shard of atomic
// counters indexed by (stage, op), so recording one op is three atomic adds
// on a cache line no other worker writes. Snapshot merges the shards.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Op indexes a shard's counters. The values deliberately mirror
// trace.Op (Load=0, Compute=1, Store=2) so executors can convert directly.
type Op int

const (
	Load Op = iota
	Compute
	Store
	numOps
)

// shardAlign separates consecutive shards' counters by at least one cache
// line so workers never false-share.
const shardAlign = 64

// Shard is one worker's private slice of counters. Only that worker writes
// it; Snapshot reads it with atomic loads.
type Shard struct {
	// bytes/ns/ops are indexed stage*numOps+op.
	bytes []atomic.Uint64
	ns    []atomic.Uint64
	ops   []atomic.Uint64

	barrierNs atomic.Uint64

	_ [shardAlign]byte //nolint:unused // padding against false sharing
}

// Add records one completed op: b bytes moved (0 for compute) in d.
func (s *Shard) Add(stage int, op Op, b int, d time.Duration) {
	if s == nil {
		return
	}
	i := stage*int(numOps) + int(op)
	if b > 0 {
		s.bytes[i].Add(uint64(b))
	}
	if d > 0 {
		s.ns[i].Add(uint64(d))
	}
	s.ops[i].Add(1)
}

// AddBarrier accumulates time this worker spent parked at step barriers.
func (s *Shard) AddBarrier(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.barrierNs.Add(uint64(d))
}

// StagePrediction is perfmodel's per-stage forecast attached to a
// collector: seconds of data movement and compute per run.
type StagePrediction struct {
	DataSec    float64
	ComputeSec float64
	Sec        float64 // modeled stage total (max × fill factor)
}

// Collector aggregates telemetry for one plan's executor. Create it with
// the stage names at plan time, hand the shards to the executor's workers,
// and read merged results with Snapshot.
type Collector struct {
	stageNames     []string
	dataWorkers    int
	computeWorkers int

	shards []*Shard // dataWorkers data shards, then computeWorkers compute shards

	runs      atomic.Uint64
	steps     atomic.Uint64 // total schedule steps across runs
	bothBusy  atomic.Uint64 // steps where data and compute were both scheduled
	wallNs    atomic.Uint64
	lastOccup atomic.Uint64 // float64 bits of the most recent run's occupancy

	mu        sync.Mutex // cold fields below
	roofline  float64    // STREAM peak GB/s; 0 = unknown
	predicted []StagePrediction
}

// NewCollector builds a collector for a graph with the given stage names
// executed by dataWorkers + computeWorkers workers.
func NewCollector(dataWorkers, computeWorkers int, stageNames []string) *Collector {
	if dataWorkers < 1 {
		dataWorkers = 1
	}
	if computeWorkers < 1 {
		computeWorkers = 1
	}
	c := &Collector{
		stageNames:     append([]string(nil), stageNames...),
		dataWorkers:    dataWorkers,
		computeWorkers: computeWorkers,
		shards:         make([]*Shard, dataWorkers+computeWorkers),
	}
	n := len(stageNames) * int(numOps)
	for i := range c.shards {
		c.shards[i] = &Shard{
			bytes: make([]atomic.Uint64, n),
			ns:    make([]atomic.Uint64, n),
			ops:   make([]atomic.Uint64, n),
		}
	}
	return c
}

// DataShard returns data worker i's shard (nil-safe on a nil collector).
func (c *Collector) DataShard(i int) *Shard {
	if c == nil || i < 0 || i >= c.dataWorkers {
		return nil
	}
	return c.shards[i]
}

// ComputeShard returns compute worker i's shard (nil-safe).
func (c *Collector) ComputeShard(i int) *Shard {
	if c == nil || i < 0 || i >= c.computeWorkers {
		return nil
	}
	return c.shards[c.dataWorkers+i]
}

// Stages returns the number of stages the collector was built for.
func (c *Collector) Stages() int {
	if c == nil {
		return 0
	}
	return len(c.stageNames)
}

// RunDone records one completed schedule replay: its step count, the number
// of steps in which data and compute were both scheduled, and the wall time.
func (c *Collector) RunDone(steps, bothBusy int, wall time.Duration) {
	if c == nil {
		return
	}
	c.runs.Add(1)
	c.steps.Add(uint64(steps))
	c.bothBusy.Add(uint64(bothBusy))
	if wall > 0 {
		c.wallNs.Add(uint64(wall))
	}
	if steps > 0 {
		c.lastOccup.Store(floatBits(float64(bothBusy) / float64(steps)))
	}
}

// SetRoofline sets the STREAM peak (GB/s) stage bandwidth is normalized
// against; 0 leaves FracPeak unset.
func (c *Collector) SetRoofline(gbs float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.roofline = gbs
	c.mu.Unlock()
}

// Roofline returns the configured STREAM peak (0 = unknown).
func (c *Collector) Roofline() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roofline
}

// SetPredicted attaches perfmodel's per-stage forecast; the slice must be
// indexed like the collector's stages (extra or missing entries are
// tolerated and simply not compared).
func (c *Collector) SetPredicted(p []StagePrediction) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.predicted = append([]StagePrediction(nil), p...)
	c.mu.Unlock()
}

// OpStats is the merged view of one (stage, op) counter set.
type OpStats struct {
	Bytes uint64 `json:"bytes"`
	Ns    uint64 `json:"ns"` // summed across the role's workers
	Ops   uint64 `json:"ops"`
	// GBs is the effective rate: bytes over the mean per-worker busy time
	// of the role (bytes·workers/ns). Zero when nothing ran.
	GBs float64 `json:"gb_per_s"`
}

// StageSnapshot is the merged per-stage telemetry.
type StageSnapshot struct {
	Name  string  `json:"name"`
	Load  OpStats `json:"load"`
	Store OpStats `json:"store"`

	ComputeNs  uint64 `json:"compute_ns"`
	ComputeOps uint64 `json:"compute_ops"`

	// GBs is the stage's combined effective data bandwidth
	// (load+store bytes over mean data-worker busy time).
	GBs float64 `json:"gb_per_s"`
	// FracPeak is GBs over the roofline (0 when the roofline is unknown).
	FracPeak float64 `json:"frac_peak"`

	// MeasuredDataSec / MeasuredComputeSec are mean per-run, per-worker
	// seconds spent in the stage's ops.
	MeasuredDataSec    float64 `json:"measured_data_sec"`
	MeasuredComputeSec float64 `json:"measured_compute_sec"`
	// Predicted* mirror perfmodel's StageCost (zero when no model was
	// attached); DataDivergence is measured/predicted data seconds — the
	// "is the schedule degenerate" ratio (1 = model-perfect, ≫1 = lost
	// bandwidth).
	PredictedDataSec    float64 `json:"predicted_data_sec,omitempty"`
	PredictedComputeSec float64 `json:"predicted_compute_sec,omitempty"`
	PredictedSec        float64 `json:"predicted_sec,omitempty"`
	DataDivergence      float64 `json:"data_divergence,omitempty"`
}

// Snapshot is a point-in-time merge of a collector's shards.
type Snapshot struct {
	Runs           uint64 `json:"runs"`
	DataWorkers    int    `json:"data_workers"`
	ComputeWorkers int    `json:"compute_workers"`

	Steps         uint64 `json:"steps"`
	BothBusySteps uint64 `json:"both_busy_steps"`
	// OverlapOccupancy is the cumulative fraction of schedule steps in
	// which a data op and a compute op were both scheduled — the
	// steady-state overlap the paper's Table II pipelining buys. A fused
	// S-stage graph approaches iters/(iters+S+1); an unfused one is
	// strictly lower.
	OverlapOccupancy float64 `json:"overlap_occupancy"`
	// LastRunOccupancy is the most recent run's occupancy alone.
	LastRunOccupancy float64 `json:"last_run_occupancy"`

	WallNs        uint64  `json:"wall_ns"`
	BarrierWaitNs uint64  `json:"barrier_wait_ns"` // summed across all workers
	RooflineGBs   float64 `json:"roofline_gb_per_s,omitempty"`

	Stages []StageSnapshot `json:"stages"`
}

// TotalBytes returns the bytes moved across all stages (loads + stores).
func (s Snapshot) TotalBytes() uint64 {
	var t uint64
	for _, st := range s.Stages {
		t += st.Load.Bytes + st.Store.Bytes
	}
	return t
}

// Snapshot merges the shards. Safe to call concurrently with recording;
// counters from an in-flight run may be partially included.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	roofline := c.roofline
	predicted := c.predicted
	c.mu.Unlock()

	snap := Snapshot{
		Runs:             c.runs.Load(),
		DataWorkers:      c.dataWorkers,
		ComputeWorkers:   c.computeWorkers,
		Steps:            c.steps.Load(),
		BothBusySteps:    c.bothBusy.Load(),
		WallNs:           c.wallNs.Load(),
		RooflineGBs:      roofline,
		LastRunOccupancy: floatFromBits(c.lastOccup.Load()),
		Stages:           make([]StageSnapshot, len(c.stageNames)),
	}
	if snap.Steps > 0 {
		snap.OverlapOccupancy = float64(snap.BothBusySteps) / float64(snap.Steps)
	}
	for _, sh := range c.shards {
		snap.BarrierWaitNs += sh.barrierNs.Load()
	}
	for st := range snap.Stages {
		out := &snap.Stages[st]
		out.Name = c.stageNames[st]
		for op := Op(0); op < numOps; op++ {
			i := st*int(numOps) + int(op)
			var b, ns, ops uint64
			for _, sh := range c.shards {
				b += sh.bytes[i].Load()
				ns += sh.ns[i].Load()
				ops += sh.ops[i].Load()
			}
			switch op {
			case Load:
				out.Load = opStats(b, ns, ops, c.dataWorkers)
			case Store:
				out.Store = opStats(b, ns, ops, c.dataWorkers)
			case Compute:
				out.ComputeNs, out.ComputeOps = ns, ops
			}
		}
		if dataNs := out.Load.Ns + out.Store.Ns; dataNs > 0 {
			out.GBs = rate(out.Load.Bytes+out.Store.Bytes, dataNs, c.dataWorkers)
			if roofline > 0 {
				out.FracPeak = out.GBs / roofline
			}
		}
		if snap.Runs > 0 {
			runs := float64(snap.Runs)
			out.MeasuredDataSec = float64(out.Load.Ns+out.Store.Ns) / float64(c.dataWorkers) / runs / 1e9
			out.MeasuredComputeSec = float64(out.ComputeNs) / float64(c.computeWorkers) / runs / 1e9
		}
		if st < len(predicted) {
			p := predicted[st]
			out.PredictedDataSec = p.DataSec
			out.PredictedComputeSec = p.ComputeSec
			out.PredictedSec = p.Sec
			if p.DataSec > 0 && out.MeasuredDataSec > 0 {
				out.DataDivergence = out.MeasuredDataSec / p.DataSec
			}
		}
	}
	return snap
}

func opStats(b, ns, ops uint64, workers int) OpStats {
	s := OpStats{Bytes: b, Ns: ns, Ops: ops}
	if ns > 0 {
		s.GBs = rate(b, ns, workers)
	}
	return s
}

// rate converts bytes over worker-summed nanoseconds into GB/s against the
// role's mean per-worker busy time: B·workers/ns (B/ns ≡ GB/s).
func rate(b, ns uint64, workers int) float64 {
	if ns == 0 {
		return 0
	}
	return float64(b) * float64(workers) / float64(ns)
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
