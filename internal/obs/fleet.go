package obs

import (
	"fmt"
	"io"
	"sort"
)

// NodeExposition is one node's parsed scrape tagged with the node's
// identity — the unit the fleet aggregator merges.
type NodeExposition struct {
	Node string
	Exp  *Exposition
}

// WriteFleet re-emits the nodes' expositions as one merged exposition with
// every sample labeled by its node. Family metadata (# HELP/# TYPE) is
// written once per family from the first node that declares it, and all of
// one family's samples are grouped under its header regardless of which
// node they came from — the shape a scraper expects. A sample that already
// carries a node label is rejected: silently overwriting it would
// misattribute another node's series.
func WriteFleet(w io.Writer, nodes []NodeExposition) error {
	type famData struct {
		name    string
		help    string
		typ     string
		samples []Sample
	}
	var order []string
	fams := map[string]*famData{}
	for _, n := range nodes {
		if n.Exp == nil {
			continue
		}
		for _, s := range n.Exp.Samples {
			if _, clash := s.Labels["node"]; clash {
				return fmt.Errorf("fleet merge: node %s already labels %s with node=%q",
					n.Node, s.Name, s.Labels["node"])
			}
			famName := n.Exp.FamilyOf(s.Name)
			f := fams[famName]
			if f == nil {
				f = &famData{
					name: famName,
					help: n.Exp.Help[famName],
					typ:  n.Exp.Types[famName],
				}
				if f.typ == "" {
					f.typ = "untyped"
				}
				fams[famName] = f
				order = append(order, famName)
			}
			labels := make(map[string]string, len(s.Labels)+1)
			for k, v := range s.Labels {
				labels[k] = v
			}
			labels["node"] = n.Node
			f.samples = append(f.samples, Sample{Name: s.Name, Labels: labels, Value: s.Value})
		}
	}

	p := NewPromWriter(w)
	for _, famName := range order {
		f := fams[famName]
		p.Family(f.name, f.help, f.typ)
		for _, s := range f.samples {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			kv := make([]string, 0, 2*len(keys))
			for _, k := range keys {
				kv = append(kv, k, s.Labels[k])
			}
			p.Sample(s.Name, s.Value, kv...)
		}
	}
	return p.Err()
}
