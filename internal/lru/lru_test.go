package lru

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrCreateCachesAndBounds(t *testing.T) {
	var built, closed atomic.Int64
	c := New[int, int](3, func(k, v int) { closed.Add(1) })
	for round := 0; round < 2; round++ {
		for k := 0; k < 3; k++ {
			v, release, err := c.GetOrCreate(k, func() (int, error) {
				built.Add(1)
				return k * 10, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if v != k*10 {
				t.Fatalf("key %d: got %d", k, v)
			}
			release()
		}
	}
	if built.Load() != 3 {
		t.Fatalf("built %d plans, want 3 (second round must hit)", built.Load())
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("stats %+v, want 3 hits / 3 misses", st)
	}

	// A fourth key evicts the least recently used (key 0) and closes it
	// immediately: no references are outstanding.
	if _, release, err := c.GetOrCreate(3, func() (int, error) { return 30, nil }); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	if c.Len() != 3 {
		t.Fatalf("len %d after overflow, want 3", c.Len())
	}
	if closed.Load() != 1 {
		t.Fatalf("closed %d, want 1", closed.Load())
	}
}

func TestEvictionDefersCloseUntilRefsDrain(t *testing.T) {
	var closed atomic.Int64
	c := New[int, string](1, func(k int, v string) { closed.Add(1) })
	v, release, err := c.GetOrCreate(1, func() (string, error) { return "one", nil })
	if err != nil || v != "one" {
		t.Fatalf("got %q, %v", v, err)
	}
	// Evict key 1 while the caller still holds a reference.
	_, release2, err := c.GetOrCreate(2, func() (string, error) { return "two", nil })
	if err != nil {
		t.Fatal(err)
	}
	release2()
	if closed.Load() != 0 {
		t.Fatal("evicted entry closed while a reference was outstanding")
	}
	release()
	if closed.Load() != 1 {
		t.Fatalf("closed %d after last release, want 1", closed.Load())
	}
}

func TestBuildErrorIsNotCached(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	c := New[int, int](4, nil)
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrCreate(7, func() (int, error) { calls++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed build cached: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("len %d, want 0", c.Len())
	}
}

func TestConcurrentSameKeyBuildsOnce(t *testing.T) {
	var built atomic.Int64
	c := New[int, int](2, nil)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, release, err := c.GetOrCreate(5, func() (int, error) {
				built.Add(1)
				return 55, nil
			})
			if err != nil || v != 55 {
				t.Errorf("got %d, %v", v, err)
				return
			}
			release()
		}()
	}
	wg.Wait()
	if built.Load() != 1 {
		t.Fatalf("built %d times, want 1", built.Load())
	}
}

func TestReentrantBuild(t *testing.T) {
	// A builder that recursively builds its sub-key through the same cache,
	// the way the fft1d mixed-radix planner does.
	c := New[int, int](8, nil)
	var get func(n int) int
	get = func(n int) int {
		v, release, err := c.GetOrCreate(n, func() (int, error) {
			if n <= 1 {
				return 1, nil
			}
			return get(n-1) + 1, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		return v
	}
	if v := get(6); v != 6 {
		t.Fatalf("got %d, want 6", v)
	}
}

func TestPurgeClosesEverything(t *testing.T) {
	var closed atomic.Int64
	c := New[int, int](8, func(k, v int) { closed.Add(1) })
	var releases []func()
	for k := 0; k < 5; k++ {
		_, release, err := c.GetOrCreate(k, func() (int, error) { return k, nil })
		if err != nil {
			t.Fatal(err)
		}
		if k%2 == 0 {
			release() // even keys: no outstanding refs at purge time
		} else {
			releases = append(releases, release)
		}
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len %d after purge, want 0", c.Len())
	}
	if closed.Load() != 3 {
		t.Fatalf("closed %d at purge, want 3 (unreferenced entries)", closed.Load())
	}
	for _, r := range releases {
		r()
	}
	if closed.Load() != 5 {
		t.Fatalf("closed %d after drains, want 5", closed.Load())
	}
}

func TestConcurrentChurn(t *testing.T) {
	var live atomic.Int64
	c := New[int, *int](4, func(k int, v *int) { live.Add(-1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 16
				v, release, err := c.GetOrCreate(k, func() (*int, error) {
					live.Add(1)
					x := k
					return &x, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if *v != k {
					t.Errorf("key %d: got %d", k, *v)
				}
				release()
			}
		}()
	}
	wg.Wait()
	c.Purge()
	if n := live.Load(); n != 0 {
		t.Fatalf("%d values leaked (built but never closed)", n)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("churn produced no evictions; capacity not enforced")
	}
}

func TestStatsString(t *testing.T) {
	c := New[string, int](2, nil)
	_, release, _ := c.GetOrCreate("a", func() (int, error) { return 1, nil })
	release()
	st := c.Stats()
	if st.Capacity != 2 || st.Len != 1 || st.Misses != 1 {
		t.Fatalf("unexpected stats %s", fmt.Sprintf("%+v", st))
	}
}
