package stagegraph

import (
	"fmt"
	"time"

	"repro/internal/affinity"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Config sizes the executor.
type Config struct {
	// DataWorkers (p_d) and ComputeWorkers (p_c), as in the single-stage
	// engine.
	DataWorkers    int
	ComputeWorkers int
	// Fused flows the steady state through stage boundaries; unfused
	// reproduces the drain-then-refill behaviour of one pipeline run per
	// stage (the A/B baseline for WithStageFusion).
	Fused bool
	// Tracer records every task with its stage index and global step.
	Tracer *trace.Recorder
	// YieldInData and LockThreads as in pipeline.Config.
	YieldInData bool
	LockThreads bool
}

// Stats summarizes one graph execution — the whole transform, not one
// stage.
type Stats struct {
	Steps          int
	Stages         int
	DataTime       time.Duration // summed worker-0 data-phase time
	ComputeTime    time.Duration // summed worker-0 compute-phase time
	WallTime       time.Duration
	DataWorkers    int
	ComputeWorkers int
	// Overlap is the fraction of data-phase time hidden under compute:
	// per step min(data, compute) summed, over total data time.
	Overlap float64
}

// slotRef names one (stage, iteration) pipeline slot and the buffer half
// its load step assigned it.
type slotRef struct {
	stage, iter, half int
}

// BuildSchedule compiles a stage graph into per-step op tables: loadAt[t],
// computeAt[t] and storeAt[t] give the slot whose load/compute/store runs
// at global step t (stage −1 = idle). The load of (stage s, iter i) runs
// at step base[s]+i, its compute one step later, its store two steps
// later, and it owns buffer half (base[s]+i) mod 2 for all three — exactly
// Table II within each stage.
//
// Fused boundaries place base[s+1] two steps after stage s's last load, so
// the first load of stage s+1 shares a step — and, by parity, a buffer
// half — with the last store of stage s; the engine's store-before-load
// ordering among data workers makes that legal, and every earlier store of
// stage s (the data the load reads) completed in strictly earlier steps.
// Stage s+1's first store then runs two steps after stage s's last load,
// after every read of stage s's source — so chains that reuse an array at
// distance two (3D: src→dst→work→dst) are safe as well. Unfused
// boundaries add one more step, reproducing separate runs: sum(iters+2)
// steps versus sum(iters)+stages+1 fused.
func BuildSchedule(stages []Stage, fused bool) (loadAt, computeAt, storeAt []slotRef, steps int) {
	iters := make([]int, len(stages))
	for i := range stages {
		iters[i] = stages[i].Iters
	}
	bases := trace.StageGraphBases(iters, fused)
	last := len(stages) - 1
	steps = bases[last] + iters[last] + 2

	idle := slotRef{stage: -1}
	loadAt = make([]slotRef, steps)
	computeAt = make([]slotRef, steps)
	storeAt = make([]slotRef, steps)
	for t := range loadAt {
		loadAt[t], computeAt[t], storeAt[t] = idle, idle, idle
	}
	for s := range stages {
		for i := 0; i < stages[s].Iters; i++ {
			l := bases[s] + i
			ref := slotRef{stage: s, iter: i, half: l % 2}
			loadAt[l] = ref
			computeAt[l+1] = ref
			storeAt[l+2] = ref
		}
	}
	return loadAt, computeAt, storeAt, steps
}

// Steps returns the schedule length of a graph without compiling it.
func Steps(stages []Stage, fused bool) int {
	total := 0
	for i := range stages {
		total += stages[i].Iters
	}
	if fused {
		return total + len(stages) + 1
	}
	return total + 2*len(stages)
}

// Run executes the compiled stage graph end to end through the double
// buffer and returns whole-transform stats. It blocks until the final
// store lands.
func Run(cfg Config, b *Buffers, stages []Stage) (Stats, error) {
	if len(stages) == 0 {
		return Stats{}, fmt.Errorf("stagegraph: empty graph")
	}
	if cfg.DataWorkers < 1 || cfg.ComputeWorkers < 1 {
		return Stats{}, fmt.Errorf("stagegraph: need ≥1 data and compute workers, got %d/%d",
			cfg.DataWorkers, cfg.ComputeWorkers)
	}
	if b == nil {
		return Stats{}, fmt.Errorf("stagegraph: nil buffers")
	}
	for i := range stages {
		if err := stages[i].validate(i, b); err != nil {
			return Stats{}, err
		}
	}

	loadAt, computeAt, storeAt, steps := BuildSchedule(stages, cfg.Fused)
	total := cfg.DataWorkers + cfg.ComputeWorkers
	// Data workers order store-before-load among themselves; at fused
	// boundaries this same barrier also orders the last store of stage k
	// before the first load of stage k+1 within their shared step.
	dataBar := pipeline.NewBarrier(cfg.DataWorkers)
	stepBar := pipeline.NewBarrier(total)

	dataDur := make([]time.Duration, steps)
	compDur := make([]time.Duration, steps)

	start := time.Now()
	done := make(chan struct{}, total)

	var panicErr error
	panicked := make(chan error, total)

	runWorker := func(role affinity.Role, slot, workers int) {
		body := func() {
			defer func() {
				if r := recover(); r != nil {
					select {
					case panicked <- fmt.Errorf("stagegraph: %s worker %d panicked: %v", role, slot, r):
					default:
					}
					dataBar.Abort()
					stepBar.Abort()
				}
				done <- struct{}{}
			}()
			for s := 0; s < steps; s++ {
				t0 := time.Now()
				if role == affinity.DataRole {
					if ref := storeAt[s]; ref.stage >= 0 {
						st := &stages[ref.stage]
						t := time.Now()
						st.store(b, ref.half, ref.iter, slot, workers)
						cfg.Tracer.Emit(trace.Event{
							Op: trace.Store, Step: s, Stage: ref.stage, Iter: ref.iter,
							Buf: ref.half, Worker: slot, Role: "data", Start: t, End: time.Now(),
						})
					}
					if !dataBar.Wait() {
						return
					}
					if ref := loadAt[s]; ref.stage >= 0 {
						st := &stages[ref.stage]
						t := time.Now()
						st.load(b, ref.half, ref.iter, slot, workers)
						cfg.Tracer.Emit(trace.Event{
							Op: trace.Load, Step: s, Stage: ref.stage, Iter: ref.iter,
							Buf: ref.half, Worker: slot, Role: "data", Start: t, End: time.Now(),
						})
					}
					if cfg.YieldInData {
						affinity.Yield()
					}
					if slot == 0 {
						dataDur[s] = time.Since(t0)
					}
				} else {
					if ref := computeAt[s]; ref.stage >= 0 {
						st := &stages[ref.stage]
						lo, hi := partition(st.Units, slot, workers)
						t := time.Now()
						st.Compute(b, ref.half, ref.iter, lo, hi)
						cfg.Tracer.Emit(trace.Event{
							Op: trace.Compute, Step: s, Stage: ref.stage, Iter: ref.iter,
							Buf: ref.half, Worker: slot, Role: "compute", Start: t, End: time.Now(),
						})
					}
					if slot == 0 {
						compDur[s] = time.Since(t0)
					}
				}
				if !stepBar.Wait() {
					return
				}
			}
		}
		if cfg.LockThreads {
			affinity.Pin(body)
		} else {
			body()
		}
	}

	for w := 0; w < cfg.DataWorkers; w++ {
		go runWorker(affinity.DataRole, w, cfg.DataWorkers)
	}
	for w := 0; w < cfg.ComputeWorkers; w++ {
		go runWorker(affinity.ComputeRole, w, cfg.ComputeWorkers)
	}
	for i := 0; i < total; i++ {
		<-done
	}
	select {
	case panicErr = <-panicked:
		return Stats{}, panicErr
	default:
	}

	st := Stats{
		Steps:          steps,
		Stages:         len(stages),
		WallTime:       time.Since(start),
		DataWorkers:    cfg.DataWorkers,
		ComputeWorkers: cfg.ComputeWorkers,
	}
	var hidden time.Duration
	for s := 0; s < steps; s++ {
		st.DataTime += dataDur[s]
		st.ComputeTime += compDur[s]
		if dataDur[s] < compDur[s] {
			hidden += dataDur[s]
		} else {
			hidden += compDur[s]
		}
	}
	if st.DataTime > 0 {
		st.Overlap = float64(hidden) / float64(st.DataTime)
	}
	return st, nil
}

func partition(total, worker, workers int) (int, int) {
	return pipeline.Partition(total, worker, workers)
}

func partitionBlocks(nblocks, blockSize, worker, workers int) (int, int) {
	return pipeline.PartitionBlocks(nblocks, blockSize, worker, workers)
}
