package shard

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fft1d"
	"repro/internal/fft3d"
)

func randCube(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// singleNode computes the single-node DoubleBuf reference result.
func singleNode(t *testing.T, k, n, m int, src []complex128, sign int) []complex128 {
	t.Helper()
	p, err := fft3d.NewPlan(k, n, m, fft3d.Options{Strategy: fft3d.DoubleBuf})
	if err != nil {
		t.Fatalf("NewPlan(%dx%dx%d): %v", k, n, m, err)
	}
	defer p.Close()
	dst := make([]complex128, len(src))
	if err := p.Transform(dst, src, sign); err != nil {
		t.Fatalf("single-node transform: %v", err)
	}
	return dst
}

func checkBitwise(t *testing.T, got, want []complex128, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: first mismatch at %d: got %v want %v (not bitwise identical)",
				label, i, got[i], want[i])
		}
	}
}

// TestClusterBitwiseEquivalence runs a sharded 3D transform on an
// in-process loopback cluster and requires the result to be bitwise
// identical to the single-node DoubleBuf plan, in both directions — the
// slab graphs issue the same per-pencil kernel calls with the same μ and
// radix chain, so not a single ulp may differ.
func TestClusterBitwiseEquivalence(t *testing.T) {
	cases := []struct {
		k, n, m, workers int
	}{
		{64, 64, 64, 3},
		{64, 64, 64, 4},
		{32, 64, 128, 4},
		{96, 48, 32, 3},
	}
	for _, tc := range cases {
		cl, err := StartCluster(tc.workers, WorkerOptions{}, CoordinatorOptions{})
		if err != nil {
			t.Fatalf("StartCluster: %v", err)
		}
		src := randCube(tc.k*tc.n*tc.m, 42)
		for _, sign := range []int{fft1d.Forward, fft1d.Inverse} {
			got := make([]complex128, len(src))
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err := cl.Coord.Transform(ctx, got, src, tc.k, tc.n, tc.m, sign)
			cancel()
			if err != nil {
				t.Fatalf("%dx%dx%d w=%d sign=%d: %v", tc.k, tc.n, tc.m, tc.workers, sign, err)
			}
			want := singleNode(t, tc.k, tc.n, tc.m, src, sign)
			label := Shape{tc.k, tc.n, tc.m}.String()
			checkBitwise(t, got, want, label)
		}
		cl.Close()
	}
}

// TestClusterLarge covers the acceptance range's top end (256³) with 4
// workers, one direction each way on the same cluster so the warm plan
// cache is exercised too.
func TestClusterLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("256³ cluster round trip is slow")
	}
	const k, n, m, workers = 256, 256, 256, 4
	cl, err := StartCluster(workers, WorkerOptions{}, CoordinatorOptions{})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	src := randCube(k*n*m, 7)
	got := make([]complex128, len(src))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := cl.Coord.Transform(ctx, got, src, k, n, m, fft1d.Forward); err != nil {
		t.Fatalf("forward: %v", err)
	}
	checkBitwise(t, got, singleNode(t, k, n, m, src, fft1d.Forward), "256³ forward")
	// Inverse of the spectrum round-trips to k·n·m times the input
	// (unnormalized), and must equal the single-node inverse bitwise.
	back := make([]complex128, len(src))
	if err := cl.Coord.Transform(ctx, back, got, k, n, m, fft1d.Inverse); err != nil {
		t.Fatalf("inverse: %v", err)
	}
	checkBitwise(t, back, singleNode(t, k, n, m, got, fft1d.Inverse), "256³ inverse")
}

// TestShardCountShrinks: a fleet larger than any valid split shrinks to
// the largest divisor, down to one worker for prime extents.
func TestShardCountShrinks(t *testing.T) {
	cl, err := StartCluster(3, WorkerOptions{}, CoordinatorOptions{})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	if got := cl.Coord.ShardCount(64, 64); got != 2 {
		// 3 does not divide 64; the next candidate is 2.
		t.Fatalf("ShardCount(64,64) on 3 nodes = %d, want 2", got)
	}
	k, n, m := 64, 64, 32
	src := randCube(k*n*m, 3)
	got := make([]complex128, len(src))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cl.Coord.Transform(ctx, got, src, k, n, m, fft1d.Forward); err != nil {
		t.Fatalf("transform: %v", err)
	}
	checkBitwise(t, got, singleNode(t, k, n, m, src, fft1d.Forward), "shrunk fleet")
}

func TestFleetOrderStable(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	s := Shape{64, 64, 64}
	first := FleetOrder(s, nodes)
	for i := 0; i < 10; i++ {
		if got := FleetOrder(s, nodes); len(got) != len(first) {
			t.Fatal("length changed")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("ordering not stable: %v vs %v", got, first)
				}
			}
		}
	}
	// Distinct shapes should not all collapse onto one ordering.
	diff := false
	for kk := 16; kk <= 512 && !diff; kk *= 2 {
		other := FleetOrder(Shape{kk, 32, 32}, nodes)
		for j := range other {
			if other[j] != first[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("rendezvous ranking identical for every shape — routing would never spread")
	}
}

func TestExchangeRouteRoundTrip(t *testing.T) {
	g, err := newGeom(32, 16, 64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.sk; s++ {
		seen := make(map[int]bool)
		// Every (q, z) block this shard's stage 2 emits must route to the
		// owner of pillar q and expand back to the right C-part offset.
		for q := 0; q < g.n*g.mb; q++ {
			for zl := 0; zl < g.ksl; zl++ {
				z := s*g.ksl + zl
				off := (q*g.k + z) * g.mu
				v, compact := g.exchangeRoute(s, off)
				if want := q / g.q; v != want {
					t.Fatalf("owner of q=%d: got %d want %d", q, v, want)
				}
				if compact < 0 || compact+g.mu > g.peerShareElems() {
					t.Fatalf("compact offset %d out of range", compact)
				}
				local := g.expandOffset(s, compact)
				if wantLocal := ((q-v*g.q)*g.k + z) * g.mu; v == s && local != wantLocal {
					t.Fatalf("self expand: got %d want %d", local, wantLocal)
				}
				if v == s {
					if seen[compact] {
						t.Fatalf("compact offset %d hit twice", compact)
					}
					seen[compact] = true
				}
			}
		}
	}
}
