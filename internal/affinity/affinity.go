// Package affinity assigns pipeline workers to roles and (virtual) cores,
// mirroring the paper's §IV thread-placement strategy.
//
// The paper pins one data-thread and one compute-thread together: on Intel
// parts the pair shares a physical core's two hyperthreads (and its L1/L2),
// on AMD parts the pair occupies two cores sharing an L2 (Fig. 2). Go has no
// portable thread-pinning API, so this package provides the next-best
// mechanisms, each of which degrades gracefully:
//
//   - a deterministic worker → (core, socket, role) layout that the pipeline
//     and the machine simulator both consume, so simulated placement matches
//     what the paper's kmp_affinity/sched_setaffinity calls produce;
//   - runtime.LockOSThread for workers, keeping a goroutine on one OS thread
//     so the kernel scheduler sees stable threads;
//   - cooperative yields in data-thread loops, the analogue of the paper's
//     NOP injection that lets the paired compute thread issue its loads.
package affinity

import (
	"fmt"
	"runtime"
)

// Role distinguishes soft-DMA data workers from compute workers.
type Role int

const (
	// ComputeRole workers run batched FFT pencils on cached buffers.
	ComputeRole Role = iota
	// DataRole workers are the soft DMA engines: they stream blocks in
	// and write rotated blocks out.
	DataRole
)

func (r Role) String() string {
	if r == DataRole {
		return "data"
	}
	return "compute"
}

// PairingStyle selects how data/compute pairs map onto cores.
type PairingStyle int

const (
	// SMTPaired puts a data-thread and a compute-thread on the two
	// hardware threads of one core (Intel, Fig. 2A): they share L1/L2 and
	// the load/store pipes.
	SMTPaired PairingStyle = iota
	// CorePaired puts each thread on its own core, pairing neighbours
	// that share an L2 (AMD, Fig. 2B).
	CorePaired
)

func (s PairingStyle) String() string {
	if s == CorePaired {
		return "core-paired"
	}
	return "smt-paired"
}

// Worker is one pipeline participant with its virtual placement.
type Worker struct {
	ID     int
	Role   Role
	Core   int
	Socket int
}

// Layout is a complete worker placement for one run.
type Layout struct {
	Style   PairingStyle
	Sockets int
	Workers []Worker
}

// NewLayout builds the paper's placement: pc compute and pd data workers per
// socket, paired per the style. pc and pd must be positive; SMTPaired
// additionally requires pc == pd (one data/compute pair per physical core).
// CorePaired places any combination on alternating cores.
func NewLayout(style PairingStyle, pc, pd, sockets int) (Layout, error) {
	if pc < 1 || pd < 1 || sockets < 1 {
		return Layout{}, fmt.Errorf("affinity: invalid layout pc=%d pd=%d sockets=%d", pc, pd, sockets)
	}
	if style == SMTPaired && pc != pd {
		return Layout{}, fmt.Errorf("affinity: SMT pairing requires pc == pd, got %d/%d", pc, pd)
	}
	l := Layout{Style: style, Sockets: sockets}
	id := 0
	for sk := 0; sk < sockets; sk++ {
		switch style {
		case SMTPaired:
			// Core c on socket sk hosts compute worker (thread 0) and
			// data worker (thread 1).
			for c := 0; c < pc; c++ {
				l.Workers = append(l.Workers,
					Worker{ID: id, Role: ComputeRole, Core: c, Socket: sk},
					Worker{ID: id + 1, Role: DataRole, Core: c, Socket: sk})
				id += 2
			}
		case CorePaired:
			// Alternate compute/data on consecutive cores so each
			// L2-sharing pair has one of each.
			core := 0
			for c, d := 0, 0; c < pc || d < pd; {
				if c < pc {
					l.Workers = append(l.Workers, Worker{ID: id, Role: ComputeRole, Core: core, Socket: sk})
					id++
					core++
					c++
				}
				if d < pd {
					l.Workers = append(l.Workers, Worker{ID: id, Role: DataRole, Core: core, Socket: sk})
					id++
					core++
					d++
				}
			}
		default:
			return Layout{}, fmt.Errorf("affinity: unknown pairing style %d", style)
		}
	}
	return l, nil
}

// ComputeWorkers returns the compute-role workers in ID order.
func (l Layout) ComputeWorkers() []Worker { return l.byRole(ComputeRole) }

// DataWorkers returns the data-role workers in ID order.
func (l Layout) DataWorkers() []Worker { return l.byRole(DataRole) }

func (l Layout) byRole(r Role) []Worker {
	var out []Worker
	for _, w := range l.Workers {
		if w.Role == r {
			out = append(out, w)
		}
	}
	return out
}

// PairOf returns the worker sharing w's core with the opposite role, if any.
func (l Layout) PairOf(w Worker) (Worker, bool) {
	if l.Style == SMTPaired {
		for _, o := range l.Workers {
			if o.Socket == w.Socket && o.Core == w.Core && o.Role != w.Role {
				return o, true
			}
		}
		return Worker{}, false
	}
	// CorePaired: neighbours (2c, 2c+1) share an L2.
	group := w.Core / 2
	for _, o := range l.Workers {
		if o.Socket == w.Socket && o.Core/2 == group && o.ID != w.ID && o.Role != w.Role {
			return o, true
		}
	}
	return Worker{}, false
}

// Pin locks the calling goroutine to its OS thread for the duration of f,
// the closest portable analogue to the paper's explicit core pinning.
func Pin(f func()) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	f()
}

// Yield is the data-thread NOP injection (§IV-A): it cedes the processor so
// a paired compute thread can issue its own loads. On a machine with spare
// cores it is nearly free; on an oversubscribed one it prevents data threads
// from monopolizing the load/store pipe.
func Yield() { runtime.Gosched() }
