// Quickstart: plan a 3D FFT, run a forward and inverse transform, and
// verify the round trip — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const k, n, m = 64, 64, 64

	// A plan is reusable and holds all twiddle tables and pipeline
	// buffers. The default configuration is the paper's double-buffered
	// scheme: half the workers stream data, half compute.
	plan, err := repro.NewFFT3D(k, n, m,
		repro.WithWorkers(1, 1),      // soft-DMA data workers / compute workers
		repro.WithBufferElems(1<<14), // pipeline block size (two halves kept)
	)
	if err != nil {
		log.Fatal(err)
	}

	// Random complex input, row-major k×n×m with x fastest.
	rng := rand.New(rand.NewSource(42))
	src := make([]complex128, plan.Len())
	for i := range src {
		src[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	freq := make([]complex128, plan.Len())
	start := time.Now()
	if err := plan.Forward(freq, src); err != nil {
		log.Fatal(err)
	}
	fwd := time.Since(start)

	back := make([]complex128, plan.Len())
	if err := plan.Inverse(back, freq); err != nil {
		log.Fatal(err)
	}

	// The inverse is normalized: Inverse(Forward(x)) == x.
	var maxErr float64
	for i := range src {
		if d := cabs(back[i] - src[i]); d > maxErr {
			maxErr = d
		}
	}

	// Parseval: energy in frequency domain = N × energy in time domain.
	var et, ef float64
	for i := range src {
		et += cabs2(src[i])
		ef += cabs2(freq[i])
	}

	elems := float64(plan.Len())
	gflops := 5 * elems * math.Log2(elems) / fwd.Seconds() / 1e9
	fmt.Printf("3D FFT %d×%d×%d (%d points)\n", k, n, m, plan.Len())
	fmt.Printf("forward:          %v (%.2f pseudo-Gflop/s)\n", fwd, gflops)
	fmt.Printf("round-trip error: %.2e\n", maxErr)
	fmt.Printf("Parseval ratio:   %.12f (want 1)\n", ef/(et*elems))
	if maxErr > 1e-9 {
		log.Fatal("round trip failed")
	}
	fmt.Println("OK")
}

func cabs(c complex128) float64  { return math.Hypot(real(c), imag(c)) }
func cabs2(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }
