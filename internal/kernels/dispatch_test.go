package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The dispatched entry points must agree with the pure-Go oracles for
// every shape the planner can produce: odd and even block counts m
// (pairs tail coverage), strides s hitting the vector body, the 128-bit
// tail and the scalar tail, unaligned slice offsets, and both transform
// signs. Tolerance is a few ulps: the codelets use FMA, the oracles
// round intermediates.

const eqTol = 1e-12

func maxDiffC(a, b []complex128) float64 {
	d := 0.0
	for i := range a {
		if v := cmplxAbs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func scaleFor(x []complex128) float64 {
	s := 1.0
	for _, v := range x {
		if a := cmplxAbs(v); a > s {
			s = a
		}
	}
	return s
}

// shapes exercises every addressing mode: s==1 (pairs incl. odd-m tail),
// s==2 (one vector iteration), s==3 (vector + 128-bit tail), s==5/7
// (split scalar tails), larger strides, and m==1..m odd.
var shapes = []struct{ m, s int }{
	{1, 1}, {2, 1}, {3, 1}, {8, 1}, {9, 1}, {64, 1}, {65, 1},
	{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 7}, {1, 8},
	{3, 3}, {4, 4}, {5, 6}, {7, 5}, {16, 8}, {13, 11}, {32, 12},
}

func randComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestRadixStepsMatchGeneric(t *testing.T) {
	if Tier() == "generic" {
		t.Skip("no accelerated tier on this build; dispatch is the oracle")
	}
	r := rand.New(rand.NewSource(7))
	for _, radix := range []int{4, 8} {
		for _, sign := range []int{Forward, Inverse} {
			for _, sh := range shapes {
				n := radix * sh.m * sh.s
				tw := NewStageTwiddles(radix*sh.m, radix, sign)
				// Offset the slices so the codelets see unaligned bases.
				for _, off := range []int{0, 1} {
					src := randComplex(r, n+off)[off:]
					got := make([]complex128, n+off)[off:]
					want := make([]complex128, n)
					switch radix {
					case 4:
						Radix4Step(got, src, sh.m, sh.s, sign, tw)
						Radix4StepGeneric(want, src, sh.m, sh.s, sign, tw)
					case 8:
						Radix8Step(got, src, sh.m, sh.s, sign, tw)
						Radix8StepGeneric(want, src, sh.m, sh.s, sign, tw)
					}
					if d := maxDiffC(got, want); d > eqTol*scaleFor(want) {
						t.Fatalf("radix=%d sign=%d m=%d s=%d off=%d: max diff %g", radix, sign, sh.m, sh.s, off, d)
					}
				}
			}
		}
	}
}

func TestSplitRadixStepsMatchGeneric(t *testing.T) {
	if Tier() == "generic" {
		t.Skip("no accelerated tier on this build; dispatch is the oracle")
	}
	r := rand.New(rand.NewSource(11))
	for _, radix := range []int{4, 8} {
		for _, sign := range []int{Forward, Inverse} {
			for _, sh := range shapes {
				n := radix * sh.m * sh.s
				tw := NewSplitTwiddles(NewStageTwiddles(radix*sh.m, radix, sign))
				for _, off := range []int{0, 1, 3} {
					mk := func() []float64 {
						x := make([]float64, n+off)
						for i := range x {
							x[i] = r.NormFloat64()
						}
						return x[off:]
					}
					srcRe, srcIm := mk(), mk()
					gotRe := make([]float64, n+off)[off:]
					gotIm := make([]float64, n+off)[off:]
					wantRe := make([]float64, n)
					wantIm := make([]float64, n)
					switch radix {
					case 4:
						SplitRadix4Step(gotRe, gotIm, srcRe, srcIm, sh.m, sh.s, sign, tw)
						SplitRadix4StepGeneric(wantRe, wantIm, srcRe, srcIm, sh.m, sh.s, sign, tw)
					case 8:
						SplitRadix8Step(gotRe, gotIm, srcRe, srcIm, sh.m, sh.s, sign, tw)
						SplitRadix8StepGeneric(wantRe, wantIm, srcRe, srcIm, sh.m, sh.s, sign, tw)
					}
					for i := range wantRe {
						if math.Abs(gotRe[i]-wantRe[i]) > eqTol*10 || math.Abs(gotIm[i]-wantIm[i]) > eqTol*10 {
							t.Fatalf("split radix=%d sign=%d m=%d s=%d off=%d idx=%d: got (%g,%g) want (%g,%g)",
								radix, sign, sh.m, sh.s, off, i, gotRe[i], gotIm[i], wantRe[i], wantIm[i])
						}
					}
				}
			}
		}
	}
}

// TestBatchStepsMatchGeneric drives the batched wrappers (which the
// stage-graph executor calls) across odd pencil counts and strides so
// the per-pencil dispatch is exercised through the same entry points the
// transforms use.
func TestBatchStepsMatchGeneric(t *testing.T) {
	if Tier() == "generic" {
		t.Skip("no accelerated tier on this build; dispatch is the oracle")
	}
	r := rand.New(rand.NewSource(13))
	for _, pencils := range []int{1, 3, 7} {
		for _, sh := range []struct{ m, s int }{{4, 1}, {3, 2}, {2, 5}} {
			n := 8 * sh.m * sh.s
			stride := n + 5 // non-contiguous pencils
			tw := NewStageTwiddles(8*sh.m, 8, Forward)
			src := randComplex(r, pencils*stride)
			got := make([]complex128, pencils*stride)
			want := make([]complex128, pencils*stride)
			BatchRadix8Step(got, src, pencils, stride, sh.m, sh.s, Forward, tw)
			SetForceGeneric(true)
			BatchRadix8Step(want, src, pencils, stride, sh.m, sh.s, Forward, tw)
			SetForceGeneric(false)
			if d := maxDiffC(got, want); d > eqTol*scaleFor(want) {
				t.Fatalf("batch pencils=%d m=%d s=%d: max diff %g", pencils, sh.m, sh.s, d)
			}
		}
	}
}

// TestTierAgainstNaiveDFT runs a full multi-stage Stockham pipeline with
// the dispatched kernels against the O(n^2) DFT, closing the loop on
// stage composition (twiddle layouts, s progression) rather than single
// stages.
func TestTierAgainstNaiveDFT(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		x := make([]complex128, n)
		r := rand.New(rand.NewSource(int64(n)))
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		want := NaiveDFT(x, Forward)
		cur := append([]complex128(nil), x...)
		tmp := make([]complex128, n)
		s := 1
		m := n / 4
		for m >= 1 {
			tw := NewStageTwiddles(4*m, 4, Forward)
			Radix4Step(tmp, cur, m, s, Forward, tw)
			cur, tmp = tmp, cur
			s *= 4
			m /= 4
		}
		if d := maxDiffC(cur, want); d > 1e-9*scaleFor(want) {
			t.Fatalf("n=%d: pipeline vs naive DFT max diff %g", n, d)
		}
	}
}

func ExampleTier() {
	fmt.Println(len(Tier()) > 0)
	// Output: true
}
