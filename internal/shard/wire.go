package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Wire constants. Payloads are the raw in-memory representation of
// []complex128 — interleaved float64 re/im pairs — on little-endian
// hosts; the CRC32-C header catches corruption in flight.
const (
	headerCRC = "X-Shard-Crc32c"

	defaultChunkElems = 128 << 10 // 2 MiB payloads
	defaultRetries    = 4
	defaultBackoff    = 10 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// complexBytes reinterprets a complex slice as its wire bytes without
// copying (the same trick the kernels and layout packages use).
func complexBytes(c []complex128) []byte {
	if len(c) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&c[0])), len(c)*16)
}

// Doer is the HTTP client seam; tests inject fault-injecting
// implementations to drop or corrupt chunks.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// transport is a Doer with retry/backoff and shard metrics. Checksum
// rejects (HTTP 422) and 5xx responses retry like network errors; other
// 4xx are protocol failures and surface immediately.
type transport struct {
	client  Doer
	retries int
	backoff time.Duration
	metrics *obs.ShardMetrics
}

// defaultClient is tuned for the shard wire pattern: many concurrent
// 512 KiB–2 MiB bodies to a handful of peers. The stock Transport's two
// idle connections per host would tear down and re-dial under a sender
// pool plus pipelined scatter/gather.
var defaultClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
}}

func newTransport(client Doer, retries int, backoff time.Duration, m *obs.ShardMetrics) *transport {
	if client == nil {
		client = defaultClient
	}
	// retries: 0 means default; negative disables retries entirely (for
	// non-idempotent calls like /shard/run).
	if retries == 0 {
		retries = defaultRetries
	} else if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	if m == nil {
		m = obs.ShardDefault
	}
	return &transport{client: client, retries: retries, backoff: backoff, metrics: m}
}

// statusChecksumReject is the worker's response to a chunk whose payload
// does not match its CRC header: distinct from protocol errors so the
// sender knows a fresh copy of the same bytes is worth retrying.
const statusChecksumReject = http.StatusUnprocessableEntity

func retryable(status int) bool {
	return status >= 500 || status == statusChecksumReject
}

// do runs one request builder with retry-with-backoff. build is called per
// attempt (bodies cannot be replayed). lastStatus distinguishes checksum
// rejects from transport failures for error typing.
func (t *transport) do(ctx context.Context, op, peer string, build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	lastStatus := 0
	sc, hasSpan := trace.SpanFromContext(ctx)
	for attempt := 0; attempt <= t.retries; attempt++ {
		if attempt > 0 {
			t.metrics.Retries.Add(1)
			t.metrics.AddPeerRetry(peer)
			d := t.backoff << uint(attempt-1)
			select {
			case <-ctx.Done():
				return nil, errf(KindDeadline, op, peer, "%v (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(d):
			}
		}
		req, err := build()
		if err != nil {
			return nil, errf(KindProtocol, op, peer, "build request: %v", err)
		}
		if hasSpan {
			req.Header.Set(trace.TraceHeader, sc.String())
		}
		resp, err := t.client.Do(req.WithContext(ctx))
		if err != nil {
			if ctx.Err() != nil {
				return nil, errf(KindDeadline, op, peer, "%v", ctx.Err())
			}
			lastErr = err
			lastStatus = 0
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		err = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
		if !retryable(resp.StatusCode) {
			return nil, errf(KindProtocol, op, peer, "%v", err)
		}
		lastErr = err
		lastStatus = resp.StatusCode
	}
	kind := KindNetwork
	if lastStatus == statusChecksumReject {
		kind = KindChecksum
	}
	return nil, errf(kind, op, peer, "retries exhausted after %d attempts: %v", t.retries+1, lastErr)
}

// postChunk ships payload to url with its CRC header, retrying with fresh
// copies until the receiver acknowledges it. Successful transfers feed the
// per-peer latency histogram (retries and backoff included, so the p99
// reflects what the transfer actually cost, not just the last attempt).
func (t *transport) postChunk(ctx context.Context, op, peer, url string, payload []byte) error {
	crc := crc32.Checksum(payload, castagnoli)
	start := time.Now()
	resp, err := t.do(ctx, op, peer, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(headerCRC, strconv.FormatUint(uint64(crc), 10))
		return req, nil
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	t.metrics.ObservePeerChunk(peer, int64(len(payload)), time.Since(start))
	return nil
}

// getChunk pulls exactly len(dst) payload bytes from url into dst,
// verifying the CRC header; a mismatch counts as a retryable transfer
// failure (the origin still holds the pristine bytes).
func (t *transport) getChunk(ctx context.Context, op, peer, url string, dst []byte) error {
	var lastErr error
	start := time.Now()
	for attempt := 0; ; attempt++ {
		if attempt > t.retries {
			return errf(KindChecksum, op, peer, "retries exhausted after %d attempts: %v", t.retries+1, lastErr)
		}
		if attempt > 0 {
			t.metrics.Retries.Add(1)
			select {
			case <-ctx.Done():
				return errf(KindDeadline, op, peer, "%v (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(t.backoff << uint(attempt-1)):
			}
		}
		resp, err := t.do(ctx, op, peer, func() (*http.Request, error) {
			return http.NewRequest(http.MethodGet, url, nil)
		})
		if err != nil {
			if se, ok := AsError(err); ok && (se.Kind == KindProtocol || se.Kind == KindDeadline) {
				return err
			}
			lastErr = err
			continue
		}
		_, err = io.ReadFull(resp.Body, dst)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("short body: %v", err)
			continue
		}
		want, err := strconv.ParseUint(resp.Header.Get(headerCRC), 10, 32)
		if err != nil {
			lastErr = fmt.Errorf("bad %s header: %v", headerCRC, err)
			continue
		}
		if got := crc32.Checksum(dst, castagnoli); got != uint32(want) {
			lastErr = fmt.Errorf("crc mismatch: got %08x want %08x", got, uint32(want))
			continue
		}
		t.metrics.ObservePeerChunk(peer, int64(len(dst)), time.Since(start))
		return nil
	}
}

// postJSON posts v as JSON and discards the response body.
func (t *transport) postJSON(ctx context.Context, op, peer, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return errf(KindProtocol, op, peer, "encode: %v", err)
	}
	resp, err := t.do(ctx, op, peer, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// postJSONResult posts v as JSON and decodes the JSON response into out.
func (t *transport) postJSONResult(ctx context.Context, op, peer, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return errf(KindProtocol, op, peer, "encode: %v", err)
	}
	resp, err := t.do(ctx, op, peer, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return errf(KindProtocol, op, peer, "decode response: %v", err)
	}
	return nil
}

// getJSON fetches url and decodes the JSON response into out.
func (t *transport) getJSON(ctx context.Context, op, peer, url string, out any) error {
	resp, err := t.do(ctx, op, peer, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return errf(KindProtocol, op, peer, "decode response: %v", err)
	}
	return nil
}

// postForResult posts (no body) and decodes the JSON response into out.
func (t *transport) postForResult(ctx context.Context, op, peer, url string, out any) error {
	resp, err := t.do(ctx, op, peer, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, url, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return errf(KindProtocol, op, peer, "decode response: %v", err)
	}
	return nil
}
