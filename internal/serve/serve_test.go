package serve

import (
	"context"
	"errors"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// smallCfg keeps worker teams tiny so tests spin up quickly.
func smallCfg() core.Config {
	cfg := core.Default()
	cfg.DataWorkers, cfg.ComputeWorkers, cfg.Workers = 1, 1, 2
	cfg.BufferElems = 1 << 10
	return cfg
}

func naiveDFT(src []complex128) []complex128 {
	n := len(src)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k*j) / float64(n)
			sum += src[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func testVec(n int, seed int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(float64((i*7+seed)%13)-6, float64((i*3+seed)%11)-5)
	}
	return v
}

func approxEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func shutdownOrFail(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestDoCorrectness checks that served transforms of every rank match the
// reference DFT and that inverse round-trips restore the input.
func TestDoCorrectness(t *testing.T) {
	s := New(Options{Config: smallCfg(), MaxBatch: 4, Executors: 2})
	defer shutdownOrFail(t, s)
	ctx := context.Background()

	t.Run("rank1", func(t *testing.T) {
		src := testVec(64, 1)
		dst := make([]complex128, 64)
		if err := s.Do(ctx, Request{Rank: 1, Dims: [3]int{64}, Src: src, Dst: dst}); err != nil {
			t.Fatal(err)
		}
		if want := naiveDFT(src); !approxEqual(dst, want, 1e-9) {
			t.Error("rank-1 served transform disagrees with reference DFT")
		}
	})
	t.Run("roundtrip2d", func(t *testing.T) {
		src := testVec(32*16, 2)
		mid := make([]complex128, len(src))
		back := make([]complex128, len(src))
		req := Request{Rank: 2, Dims: [3]int{32, 16}, Src: src, Dst: mid}
		if err := s.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
		req = Request{Rank: 2, Dims: [3]int{32, 16}, Inverse: true, Src: mid, Dst: back}
		if err := s.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
		if !approxEqual(back, src, 1e-9) {
			t.Error("rank-2 inverse∘forward is not the identity")
		}
	})
	t.Run("roundtrip3d", func(t *testing.T) {
		src := testVec(8*8*16, 3)
		mid := make([]complex128, len(src))
		back := make([]complex128, len(src))
		if err := s.Do(ctx, Request{Rank: 3, Dims: [3]int{8, 8, 16}, Src: src, Dst: mid}); err != nil {
			t.Fatal(err)
		}
		if err := s.Do(ctx, Request{Rank: 3, Dims: [3]int{8, 8, 16}, Inverse: true, Src: mid, Dst: back}); err != nil {
			t.Fatal(err)
		}
		if !approxEqual(back, src, 1e-9) {
			t.Error("rank-3 inverse∘forward is not the identity")
		}
	})
}

// TestCoalescedBatchCorrectness floods the server with same-shape 1D
// requests so the dispatcher actually coalesces, and checks every caller
// still gets its own correct answer (the batch path copies in and out of a
// shared pencil buffer).
func TestCoalescedBatchCorrectness(t *testing.T) {
	const n, reqs = 64, 100
	s := New(Options{Config: smallCfg(), MaxBatch: 8, Executors: 1,
		BatchWindow: 2 * time.Millisecond})
	defer shutdownOrFail(t, s)

	srcs := make([][]complex128, reqs)
	dsts := make([][]complex128, reqs)
	want := naiveDFT(testVec(n, 0))
	var wg sync.WaitGroup
	errs := make([]error, reqs)
	for i := 0; i < reqs; i++ {
		srcs[i] = testVec(n, 0)
		dsts[i] = make([]complex128, n)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Do(context.Background(), Request{
				Rank: 1, Dims: [3]int{n}, Src: srcs[i], Dst: dsts[i]})
		}(i)
	}
	wg.Wait()
	for i := 0; i < reqs; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !approxEqual(dsts[i], want, 1e-9) {
			t.Fatalf("request %d: coalesced result disagrees with reference", i)
		}
	}
	snap := s.Stats()
	if snap.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	if snap.AvgBatch <= 1.0 {
		t.Errorf("no coalescing happened: avg batch %.2f over %d batches",
			snap.AvgBatch, snap.Batches)
	}
	t.Logf("coalesced %d requests into %d batches (avg %.1f)",
		snap.BatchedItems, snap.Batches, snap.AvgBatch)
}

// TestRejectBackpressure fills the queue with the executor gated shut and
// checks overflow submissions fail fast with ErrOverloaded.
func TestRejectBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s := New(Options{Config: smallCfg(), QueueDepth: 2, MaxBatch: 1,
		Executors: 1, Policy: Reject})
	s.execGate = gate

	n := 16
	submit := func() error {
		return s.Do(context.Background(), Request{
			Rank: 1, Dims: [3]int{n},
			Src: testVec(n, 0), Dst: make([]complex128, n)})
	}
	// With the gate shut the pipeline absorbs at most 4 requests (2 in
	// the queue, 1 held by the dispatcher, 1 parked at the gate), so at
	// least 4 of 8 submissions must be rejected — and a rejection is the
	// only way a Do can return while the gate is shut, so the first four
	// errCh reads cannot block and must all be ErrOverloaded.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); errCh <- submit() }()
	}
	rejected := 0
	for i := 0; i < 4; i++ {
		if err := <-errCh; errors.Is(err, ErrOverloaded) {
			rejected++
		} else {
			t.Fatalf("got %v while the executor was gated, want ErrOverloaded", err)
		}
	}
	gateOpen := make(chan struct{})
	go func() {
		defer close(gateOpen)
		for {
			select {
			case gate <- struct{}{}:
			case <-s.stopped:
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if errors.Is(err, ErrOverloaded) {
			rejected++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if s.Stats().Rejected != uint64(rejected) {
		t.Errorf("rejected counter %d, want %d", s.Stats().Rejected, rejected)
	}
	shutdownOrFail(t, s)
	<-gateOpen
}

// TestContextCancellation checks both admission-time and queued-request
// cancellation: a cancelled context must abandon the request without the
// executor ever touching the caller's buffers.
func TestContextCancellation(t *testing.T) {
	gate := make(chan struct{})
	s := New(Options{Config: smallCfg(), QueueDepth: 4, MaxBatch: 1, Executors: 1})
	s.execGate = gate
	defer func() { shutdownOrFail(t, s) }()

	n := 16
	// Park one request at the gate, then queue another and cancel it.
	first := make(chan error, 1)
	go func() {
		first <- s.Do(context.Background(), Request{Rank: 1, Dims: [3]int{n},
			Src: testVec(n, 0), Dst: make([]complex128, n)})
	}()

	ctx, cancel := context.WithCancel(context.Background())
	dst := make([]complex128, n)
	queued := make(chan error, 1)
	go func() {
		queued <- s.Do(ctx, Request{Rank: 1, Dims: [3]int{n},
			Src: testVec(n, 1), Dst: dst})
	}()
	time.Sleep(10 * time.Millisecond) // let both requests enqueue
	cancel()
	select {
	case err := <-queued:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued request returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return")
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("executor wrote into cancelled request's dst[%d] = %v", i, v)
		}
	}
	// Release the gate; the first request (and the cancelled one's
	// claim-skip) must complete. The gate feeds every batch, including the
	// tombstone of the cancelled item.
	go func() {
		for {
			select {
			case gate <- struct{}{}:
			case <-s.stopped:
				return
			}
		}
	}()
	if err := <-first; err != nil {
		t.Fatalf("gated request failed: %v", err)
	}
	if c := s.Stats().Cancelled; c == 0 {
		t.Error("cancellation not counted")
	}
}

// TestDeadlineAtAdmission checks the Block policy respects the caller's
// context while waiting for queue space.
func TestDeadlineAtAdmission(t *testing.T) {
	gate := make(chan struct{})
	s := New(Options{Config: smallCfg(), QueueDepth: 1, MaxBatch: 1, Executors: 1})
	s.execGate = gate
	defer func() { close(gate); shutdownOrFail(t, s) }()

	n := 16
	submit := func(ctx context.Context) error {
		return s.Do(ctx, Request{Rank: 1, Dims: [3]int{n},
			Src: testVec(n, 0), Dst: make([]complex128, n)})
	}
	// Fill: one parked at the gate eventually, one in the queue.
	done1 := make(chan error, 1)
	done2 := make(chan error, 1)
	go func() { done1 <- submit(context.Background()) }()
	go func() { done2 <- submit(context.Background()) }()
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := submit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked admission returned %v, want DeadlineExceeded", err)
	}
}

// TestCacheReuseAndEviction checks that repeated shapes hit the cache,
// overflowing shapes evict, and an evicted plan pinned by an in-flight
// request is closed only after release (the request still succeeds).
func TestCacheReuseAndEviction(t *testing.T) {
	s := New(Options{Config: smallCfg(), CacheCapacity: 2, MaxBatch: 1, Executors: 1})
	defer shutdownOrFail(t, s)
	ctx := context.Background()

	do := func(n int) error {
		return s.Do(ctx, Request{Rank: 1, Dims: [3]int{n},
			Src: testVec(n, 0), Dst: make([]complex128, n)})
	}
	for i := 0; i < 3; i++ {
		if err := do(32); err != nil {
			t.Fatal(err)
		}
	}
	cs := s.Stats().Cache
	if cs.Misses != 1 || cs.Hits < 2 {
		t.Errorf("same-shape requests: hits=%d misses=%d, want ≥2 hits / 1 miss", cs.Hits, cs.Misses)
	}
	// Walk more shapes than the capacity: evictions must happen and every
	// request must still succeed.
	for _, n := range []int{16, 48, 80, 96} {
		if err := do(n); err != nil {
			t.Fatal(err)
		}
	}
	cs = s.Stats().Cache
	if cs.Evictions == 0 {
		t.Error("walking 5 shapes through a 2-plan cache evicted nothing")
	}
	if cs.Len > 2 {
		t.Errorf("cache len %d exceeds capacity 2", cs.Len)
	}
}

// TestSpans checks per-request queue/exec span tagging.
func TestSpans(t *testing.T) {
	rec := trace.New()
	s := New(Options{Config: smallCfg(), MaxBatch: 1, Executors: 1, Tracer: rec})
	defer shutdownOrFail(t, s)
	n := 32
	if err := s.Do(context.Background(), Request{Rank: 1, Dims: [3]int{n},
		Src: testVec(n, 0), Dst: make([]complex128, n)}); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	if len(spans) < 2 {
		t.Fatalf("got %d spans, want at least queue+exec", len(spans))
	}
	var haveQueue, haveExec bool
	req := spans[0].Req
	for _, sp := range rec.SpansFor(req) {
		switch sp.Name {
		case "queue":
			haveQueue = true
		case "exec":
			haveExec = true
		}
		if sp.End.Before(sp.Start) {
			t.Errorf("span %q ends before it starts", sp.Name)
		}
	}
	if !haveQueue || !haveExec {
		t.Errorf("request %d missing spans: queue=%v exec=%v", req, haveQueue, haveExec)
	}
}

// TestDoValidation checks malformed requests fail synchronously.
func TestDoValidation(t *testing.T) {
	s := New(Options{Config: smallCfg()})
	defer shutdownOrFail(t, s)
	ctx := context.Background()
	cases := []Request{
		{Rank: 0, Dims: [3]int{4}},
		{Rank: 4, Dims: [3]int{4, 4, 4}},
		{Rank: 1, Dims: [3]int{4, 4}},
		{Rank: 1, Dims: [3]int{8}, Src: make([]complex128, 4), Dst: make([]complex128, 8)},
		{Rank: 2, Dims: [3]int{4, 4}, Src: make([]complex128, 16), Dst: make([]complex128, 15)},
	}
	for i, req := range cases {
		if err := s.Do(ctx, req); err == nil {
			t.Errorf("case %d: malformed request accepted", i)
		}
	}
	if got := s.Stats().Completed; got != 0 {
		t.Errorf("malformed requests completed: %d", got)
	}
}

// TestDoAfterShutdown checks post-shutdown submissions fail with ErrClosed.
func TestDoAfterShutdown(t *testing.T) {
	s := New(Options{Config: smallCfg()})
	shutdownOrFail(t, s)
	n := 16
	err := s.Do(context.Background(), Request{Rank: 1, Dims: [3]int{n},
		Src: testVec(n, 0), Dst: make([]complex128, n)})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Shutdown returned %v, want ErrClosed", err)
	}
}

// numGoroutineStable polls NumGoroutine until it stops above the target or
// times out, absorbing asynchronous worker teardown.
func numGoroutineStable(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}
