package cachesim

import "testing"

func TestStreamsProduceExpectedAccesses(t *testing.T) {
	l := &LoopStream{Base: 100, Bytes: 128, ElemSize: 64, Total: 4}
	var addrs []uint64
	for {
		a, size, kind, ok := l.Next()
		if !ok {
			break
		}
		if size != 64 || kind != Read {
			t.Fatal("loop stream wrong shape")
		}
		addrs = append(addrs, a)
	}
	want := []uint64{100, 164, 100, 164}
	if len(addrs) != 4 {
		t.Fatalf("produced %d", len(addrs))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs = %v", addrs)
		}
	}

	s := &SweepStream{Base: 0, ElemSize: 64, Total: 3, Kind: WriteNT}
	count := 0
	for {
		_, _, kind, ok := s.Next()
		if !ok {
			break
		}
		if kind != WriteNT {
			t.Fatal("sweep kind wrong")
		}
		count++
	}
	if count != 3 {
		t.Fatalf("sweep produced %d", count)
	}
}

func TestInterleaveExhaustsAllStreams(t *testing.T) {
	h := tiny(t)
	a := &SweepStream{Base: 0, ElemSize: 64, Total: 5, Kind: Read}
	b := &SweepStream{Base: regionGap, ElemSize: 64, Total: 9, Kind: Read}
	Interleave(h, a, b)
	s0 := h.Stats(0)
	if s0.Hits+s0.Misses != 14 {
		t.Fatalf("interleave performed %d accesses, want 14", s0.Hits+s0.Misses)
	}
}

// The paper's §IV-A interference claim, measured: a temporally streaming
// data thread evicts its SMT partner's working set; a non-temporal one
// leaves it resident.
func TestPairInterferenceTemporalVsNT(t *testing.T) {
	// The compute thread's working set fills the LLC — the paper's
	// regime, where the buffer is half the LLC and twiddles plus
	// temporaries consume the rest. Any extra allocation then evicts.
	const bufBytes = 4 << 10 // = the tiny hierarchy's full L2
	const sweepBytes = 64 << 10

	hNT := tiny(t)
	ntMisses := PairInterference(hNT, bufBytes, sweepBytes, WriteNT)
	hT := tiny(t)
	tMisses := PairInterference(hT, bufBytes, sweepBytes, Write)

	if ntMisses != 0 {
		t.Fatalf("NT data thread evicted the partner's buffer: %d misses", ntMisses)
	}
	if tMisses == 0 {
		t.Fatal("temporal data thread should have evicted the partner's buffer")
	}
	// Temporal *reads* pollute just the same (the R matrix must read NT).
	hTR := tiny(t)
	trMisses := PairInterference(hTR, bufBytes, sweepBytes, Read)
	if trMisses == 0 {
		t.Fatal("temporal streaming reads should also evict the buffer")
	}
	hNR := tiny(t)
	nrMisses := PairInterference(hNR, bufBytes, sweepBytes, ReadNT)
	if nrMisses != 0 {
		t.Fatalf("NT streaming reads evicted the buffer: %d misses", nrMisses)
	}
}
