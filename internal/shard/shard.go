// Package shard executes one large 3D FFT across a fleet of fftserved
// nodes. It generalizes the multisocket slab-pencil decomposition
// (fft3d.DistPlan, paper §IV-B Table III): every worker owns a contiguous
// z-slab of the input and a y-slab of the output, runs its local stages on
// a persistent stagegraph.Executor, and the one data redistribution the
// algorithm needs — the stage-2 W² scatter — becomes a chunked, pipelined
// network exchange instead of a QPI write.
//
// Roles:
//
//   - The Coordinator partitions the cube, routes repeated shapes to the
//     same workers via rendezvous hashing (so their plan caches stay
//     warm), scatters input slabs, triggers the run, and gathers output
//     slabs.
//   - A Worker holds an LRU of warm plans (graphs + executor + buffers),
//     receives its slab, runs stages 1+2 fused (the W² stores stream into
//     per-peer send buffers and ship as chunks while compute continues),
//     waits for the last inbound chunk, then runs stage 3 into its output
//     y-slab.
//
// Wire protocol (HTTP/1.1, keep-alive; payloads are raw little-endian
// float64 pairs, 16 bytes per complex element, guarded by a CRC32-C
// header; cross-endian fleets are not supported):
//
//	POST /shard/begin          JSON JobSpec; acquires the worker's plan
//	POST /shard/chunk?job=&kind=input|exchange&from=&off=&count=
//	POST /shard/run?job=&sign=
//	GET  /shard/result?job=&off=&count=
//	POST /shard/end?job=
//
// Every chunk transfer retries with exponential backoff on network
// errors, 5xx and checksum rejects; deadlines propagate from the serving
// layer via JobSpec and bound every wait. Failures surface as *Error with
// a typed Kind so callers can distinguish a corrupt link from an
// exhausted deadline.
//
// Because each worker's graphs come from fft3d.SlabSpec — the same
// per-pencil kernel calls, μ and radix chain as the single-node plan —
// the fleet's result is bitwise identical to a single-node transform.
package shard

import (
	"errors"
	"fmt"
)

// Shape identifies a transform geometry for routing and plan caching.
type Shape struct {
	K, N, M int
}

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.K, s.N, s.M) }

// ErrKind classifies shard-tier failures.
type ErrKind int

const (
	// KindProtocol: malformed or out-of-order request, size mismatch,
	// unknown job. Not retryable.
	KindProtocol ErrKind = iota
	// KindNetwork: transport-level failure that survived every retry.
	KindNetwork
	// KindChecksum: payload failed CRC32-C verification on every attempt.
	KindChecksum
	// KindDeadline: the job's deadline expired mid-flight.
	KindDeadline
	// KindBusy: the worker is draining or its plan is held past the
	// acquisition deadline.
	KindBusy
)

func (k ErrKind) String() string {
	switch k {
	case KindProtocol:
		return "protocol"
	case KindNetwork:
		return "network"
	case KindChecksum:
		return "checksum"
	case KindDeadline:
		return "deadline"
	case KindBusy:
		return "busy"
	}
	return "unknown"
}

// Error is the shard tier's typed failure: which phase, which peer, what
// kind. errors.Is/As work through Unwrap.
type Error struct {
	Kind ErrKind
	Op   string // "begin", "scatter", "exchange", "run", "gather", "end"
	Peer string // base URL of the peer involved, "" for local failures
	Err  error
}

func (e *Error) Error() string {
	if e.Peer != "" {
		return fmt.Sprintf("shard: %s %s (peer %s): %v", e.Kind, e.Op, e.Peer, e.Err)
	}
	return fmt.Sprintf("shard: %s %s: %v", e.Kind, e.Op, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// AsError extracts a *Error from err's chain, if any.
func AsError(err error) (*Error, bool) {
	var se *Error
	ok := errors.As(err, &se)
	return se, ok
}

func errf(kind ErrKind, op, peer, format string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Peer: peer, Err: fmt.Errorf(format, args...)}
}

// JobSpec is the /shard/begin payload: everything a worker needs to build
// (or find cached) its slab plan and to address its peers.
type JobSpec struct {
	Job     string   `json:"job"`
	K       int      `json:"k"`
	N       int      `json:"n"`
	M       int      `json:"m"`
	Mu      int      `json:"mu"`
	Radix   int      `json:"radix"`
	Index   int      `json:"index"`
	Workers []string `json:"workers"` // base URLs in fleet order; len = shard count
	// ChunkElems is the exchange/gather chunk size in complex elements;
	// workers round it to a multiple of μ for exchange payloads.
	ChunkElems int `json:"chunk_elems"`
	// DeadlineUnixNano bounds every wait in the job; 0 means none.
	DeadlineUnixNano int64 `json:"deadline_unix_nano,omitempty"`
	// Trace is the coordinator-assigned distributed trace ID; workers tag
	// their ring events and spans with it so /shard/trace?id= can hand the
	// coordinator this transform's slice of each node's timeline.
	Trace string `json:"trace,omitempty"`
}

// Shape returns the spec's transform geometry.
func (js JobSpec) Shape() Shape { return Shape{js.K, js.N, js.M} }

// beginResult is the /shard/begin response. NowUnixNano is the worker's
// clock at reply time: the coordinator pairs it with the request's
// send/receive instants to estimate the worker's clock offset
// (offset = workerNow − round-trip midpoint), which aligns the node's
// lane in the merged fleet trace.
type beginResult struct {
	NowUnixNano int64 `json:"now_unix_nano"`
}

// runStats is the /shard/run response: the worker's own accounting,
// aggregated by the coordinator into obs.ShardMetrics.
type runStats struct {
	BytesSent      int64 `json:"bytes_sent"`
	BytesReceived  int64 `json:"bytes_received"`
	ChunksSent     int64 `json:"chunks_sent"`
	ExchangeWaitNS int64 `json:"exchange_wait_ns"`
	FrontNS        int64 `json:"front_ns"`
	BackNS         int64 `json:"back_ns"`
}
