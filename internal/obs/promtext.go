package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a strict reader for the Prometheus text exposition
// format (version 0.0.4). It exists so the repo can *validate* its own
// hand-written exporters — the obssmoke make target and `fftserved
// -selftest` scrape /metrics and fail the build if the output would not be
// accepted by a real Prometheus scraper (bad names, unescaped labels,
// duplicate series, NaN gauges).

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Series returns the canonical identity of the sample: name plus labels in
// sorted order. Two samples with equal Series strings are duplicates.
func (s Sample) Series() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

var validMetricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// Exposition is a parsed scrape: every sample plus the family metadata the
// # TYPE and # HELP comments declared. Types and Help are keyed by family
// name; fleet aggregation re-emits them, and histogram validation needs
// Types to know which families to structure-check.
type Exposition struct {
	Samples []Sample
	Types   map[string]string
	Help    map[string]string
}

// Parse reads an exposition and returns every sample, enforcing the
// format's grammar: metric and label names must match
// [a-zA-Z_:][a-zA-Z0-9_:]*  (labels without the colon), label values must
// use \\, \", \n escapes only, values must parse as Go floats (NaN/±Inf
// spellings included), and # TYPE lines must name a known type.
func Parse(r io.Reader) ([]Sample, error) {
	exp, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	return exp.Samples, nil
}

// ParseExposition is Parse plus the family metadata: the TYPE and HELP
// declarations are retained instead of merely checked.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Types: make(map[string]string),
		Help:  make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if err := exp.addComment(trimmed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// ValidateExposition parses the exposition and additionally rejects what a
// real Prometheus scraper (or sane PromQL) would choke on: duplicate
// series, and structurally broken histogram families — _bucket samples
// without an le label, non-cumulative bucket counts, a missing or
// disagreeing +Inf/_count pair, or a missing _sum. It returns the samples
// on success.
func ValidateExposition(r io.Reader) ([]Sample, error) {
	exp, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(exp.Samples))
	for _, s := range exp.Samples {
		key := s.Series()
		if seen[key] {
			return nil, fmt.Errorf("duplicate series %s", key)
		}
		seen[key] = true
	}
	if err := checkHistograms(exp); err != nil {
		return nil, err
	}
	return exp.Samples, nil
}

// addComment records "# HELP name text" and "# TYPE name type" metadata;
// any other comment is free-form and ignored.
func (exp *Exposition) addComment(line string) error {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " \t")
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		if fields[0] == "" || !validMetricName(fields[0]) {
			return fmt.Errorf("HELP with invalid metric name %q", fields[0])
		}
		if len(fields) == 2 {
			exp.Help[fields[0]] = fields[1]
		} else {
			exp.Help[fields[0]] = ""
		}
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validMetricName(fields[0]) {
			return fmt.Errorf("TYPE with invalid metric name %q", fields[0])
		}
		if !validMetricTypes[fields[1]] {
			return fmt.Errorf("unknown metric type %q", fields[1])
		}
		exp.Types[fields[0]] = fields[1]
	}
	return nil
}

// FamilyOf maps a sample name to the family whose TYPE declaration covers
// it: for histogram and summary families the _bucket/_sum/_count suffixes
// belong to the base family.
func (exp *Exposition) FamilyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t := exp.Types[base]; t == "histogram" || t == "summary" {
			return base
		}
	}
	return name
}

// histKey identifies one histogram child: the label set minus le.
func histKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// approxGE reports a ≥ b up to float slack: exporters that scale sampled
// bucket counts accumulate rounding, which must not read as a broken
// cumulative invariant.
func approxGE(a, b float64) bool {
	slack := 1e-9 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return a >= b-slack
}

// checkHistograms structure-checks every family declared "# TYPE …
// histogram": per child (label set minus le) the buckets must carry
// parseable le bounds, be cumulative (non-decreasing with increasing le),
// include +Inf, agree with _count at +Inf, and come with a _sum.
func checkHistograms(exp *Exposition) error {
	type child struct {
		les      []float64
		counts   map[float64]float64
		sum      bool
		count    float64
		hasCount bool
	}
	children := map[string]map[string]*child{} // family → histKey → child
	get := func(fam, key string) *child {
		if children[fam] == nil {
			children[fam] = map[string]*child{}
		}
		c := children[fam][key]
		if c == nil {
			c = &child{counts: map[float64]float64{}}
			children[fam][key] = c
		}
		return c
	}
	for _, s := range exp.Samples {
		fam := exp.FamilyOf(s.Name)
		if exp.Types[fam] != "histogram" || fam == s.Name {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket %s without le label", fam, s.Series())
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: unparseable le %q", fam, leStr)
			}
			c := get(fam, histKey(s.Labels))
			if _, dup := c.counts[le]; dup {
				return fmt.Errorf("histogram %s: duplicate bucket le=%q", fam, leStr)
			}
			c.les = append(c.les, le)
			c.counts[le] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			get(fam, histKey(s.Labels)).sum = true
		case strings.HasSuffix(s.Name, "_count"):
			c := get(fam, histKey(s.Labels))
			c.count = s.Value
			c.hasCount = true
		}
	}
	for fam, byKey := range children {
		for key, c := range byKey {
			where := fam
			if key != "" {
				where = fam + "{" + key + "}"
			}
			if len(c.les) == 0 {
				return fmt.Errorf("histogram %s: no buckets", where)
			}
			sort.Float64s(c.les)
			inf := c.les[len(c.les)-1]
			if !math.IsInf(inf, 1) {
				return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", where)
			}
			for i := 1; i < len(c.les); i++ {
				lo, hi := c.les[i-1], c.les[i]
				if !approxGE(c.counts[hi], c.counts[lo]) {
					return fmt.Errorf("histogram %s: bucket le=%g (%g) below le=%g (%g); not cumulative",
						where, hi, c.counts[hi], lo, c.counts[lo])
				}
			}
			if !c.hasCount {
				return fmt.Errorf("histogram %s: missing _count", where)
			}
			if !c.sum {
				return fmt.Errorf("histogram %s: missing _sum", where)
			}
			if d := math.Abs(c.counts[inf] - c.count); d > 1e-9*math.Max(1, c.count) {
				return fmt.Errorf("histogram %s: +Inf bucket %g disagrees with _count %g",
					where, c.counts[inf], c.count)
			}
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0, true) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	// "value" or "value timestamp".
	if len(fields) != 1 && len(fields) != 2 {
		return s, fmt.Errorf("expected value after metric %q", s.Name)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("metric %q: %w", s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("metric %q: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == ',') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		start := i
		for i < len(rest) && isNameChar(rest[i], i == start, false) {
			i++
		}
		name := rest[start:i]
		if name == "" || !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if i >= len(rest) || rest[i] != '=' {
			return nil, "", fmt.Errorf("label %q: expected '='", name)
		}
		i++
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label %q: value must be quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("label %q: unterminated value", name)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(rest) {
					return nil, "", fmt.Errorf("label %q: dangling escape", name)
				}
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %q: bad escape \\%c", name, rest[i])
				}
				i++
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("label %q: raw newline in value", name)
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	// strconv accepts the exposition's NaN/+Inf/-Inf spellings already.
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func isNameChar(c byte, first, allowColon bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c == ':':
		return allowColon
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0, true) {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0, false) {
			return false
		}
	}
	return s != ""
}
