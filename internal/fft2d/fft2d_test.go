package fft2d

import (
	"math/rand"
	"testing"

	"repro/internal/cvec"
	"repro/internal/fft1d"
	"repro/internal/spl"
	"repro/internal/trace"
)

const tol = 1e-9

func randVec(seed int64, n int) []complex128 {
	return cvec.Random(rand.New(rand.NewSource(seed)), n)
}

// refDFT2D computes the 2D DFT via the SPL formula semantics.
func refDFT2D(n, m int, x []complex128, sign int) []complex128 {
	f := spl.DFT2D(n, m)
	if sign == fft1d.Inverse {
		f = spl.Compose(spl.Kron(spl.IDFT(n), spl.I(m)), spl.Kron(spl.I(n), spl.IDFT(m)))
	}
	return spl.Eval(f, x)
}

func TestReferenceMatchesSPL(t *testing.T) {
	for _, c := range []struct{ n, m int }{{1, 1}, {2, 2}, {4, 8}, {8, 4}, {3, 5}, {16, 16}} {
		p, err := NewPlan(c.n, c.m, Options{Strategy: Reference})
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(int64(c.n*c.m), c.n*c.m)
		got := make([]complex128, len(x))
		if err := p.Transform(got, x, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		want := refDFT2D(c.n, c.m, x, fft1d.Forward)
		if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(c.n*c.m) {
			t.Errorf("reference %dx%d: diff %g", c.n, c.m, d)
		}
	}
}

func TestPencilMatchesReference(t *testing.T) {
	for _, c := range []struct{ n, m, workers int }{
		{8, 8, 1}, {16, 32, 2}, {32, 16, 4}, {5, 12, 3},
	} {
		ref, _ := NewPlan(c.n, c.m, Options{Strategy: Reference})
		pen, err := NewPlan(c.n, c.m, Options{Strategy: Pencil, Workers: c.workers})
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(int64(c.n+c.m), c.n*c.m)
		want := make([]complex128, len(x))
		got := make([]complex128, len(x))
		if err := ref.Transform(want, x, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		if err := pen.Transform(got, x, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(c.n*c.m) {
			t.Errorf("pencil %dx%d workers=%d: diff %g", c.n, c.m, c.workers, d)
		}
	}
}

func doubleBufCase(t *testing.T, n, m, mu, bufElems, pd, pc int, split bool, sign int) {
	t.Helper()
	ref, _ := NewPlan(n, m, Options{Strategy: Reference})
	db, err := NewPlan(n, m, Options{
		Strategy: DoubleBuf, Mu: mu, BufferElems: bufElems,
		DataWorkers: pd, ComputeWorkers: pc, SplitFormat: split,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(int64(n*m+mu+sign), n*m)
	want := make([]complex128, len(x))
	got := make([]complex128, len(x))
	if err := ref.Transform(want, x, sign); err != nil {
		t.Fatal(err)
	}
	if err := db.Transform(got, x, sign); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(n*m) {
		t.Errorf("doublebuf %dx%d μ=%d b=%d p=%d/%d split=%v: diff %g",
			n, m, mu, bufElems, pd, pc, split, d)
	}
}

func TestDoubleBufMatchesReference(t *testing.T) {
	for _, c := range []struct{ n, m, mu, b, pd, pc int }{
		{8, 8, 4, 16, 1, 1},
		{16, 16, 4, 64, 1, 1},
		{32, 64, 4, 256, 2, 2},
		{64, 32, 8, 512, 2, 4},
		{16, 64, 16, 128, 3, 3},
		{128, 128, 4, 1 << 12, 2, 2},
		{4, 8, 4, 8, 1, 1},        // tiny blocks, several iterations
		{8, 16, 4, 1 << 20, 1, 1}, // buffer larger than the matrix
	} {
		doubleBufCase(t, c.n, c.m, c.mu, c.b, c.pd, c.pc, false, fft1d.Forward)
	}
}

func TestDoubleBufSplitMatchesReference(t *testing.T) {
	for _, c := range []struct{ n, m, mu, b, pd, pc int }{
		{16, 16, 4, 64, 1, 1},
		{32, 64, 4, 256, 2, 2},
		{64, 128, 8, 1 << 11, 2, 3},
	} {
		doubleBufCase(t, c.n, c.m, c.mu, c.b, c.pd, c.pc, true, fft1d.Forward)
	}
}

func TestDoubleBufInverse(t *testing.T) {
	doubleBufCase(t, 32, 32, 4, 128, 2, 2, false, fft1d.Inverse)
	doubleBufCase(t, 32, 32, 4, 128, 2, 2, true, fft1d.Inverse)
}

func TestRoundTripThroughDoubleBuf(t *testing.T) {
	const n, m = 64, 64
	p, err := NewPlan(n, m, Options{Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(77, n*m)
	y := make([]complex128, n*m)
	z := make([]complex128, n*m)
	if err := p.Transform(y, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(z, y, fft1d.Inverse); err != nil {
		t.Fatal(err)
	}
	fft1d.Scale(z, 1/float64(n*m))
	if d := cvec.MaxDiff(cvec.Vec(z), cvec.Vec(x)); d > tol {
		t.Fatalf("round trip diff %g", d)
	}
}

func TestInPlace(t *testing.T) {
	for _, s := range []Strategy{Reference, Pencil, DoubleBuf} {
		p, err := NewPlan(16, 32, Options{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(int64(s), 16*32)
		want := make([]complex128, len(x))
		if err := p.Transform(want, x, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := p.InPlace(got, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol {
			t.Errorf("%v InPlace: diff %g", s, d)
		}
	}
}

func TestDoubleBufScheduleIsTableII(t *testing.T) {
	tr := trace.New()
	p, err := NewPlan(32, 16, Options{
		Strategy: DoubleBuf, Mu: 4, BufferElems: 64,
		DataWorkers: 2, ComputeWorkers: 2, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// BufferElems alone would allow 64/16 = 4 rows per block (8 iters), but
	// the pipeline-depth floor caps blocks at 32/minStageIters = 3 rows,
	// rounded down to the divisor 2 — 16 iterations per stage.
	iters1 := p.Stage1Iters()
	if iters1 != 16 {
		t.Fatalf("Stage1Iters = %d, want 16", iters1)
	}
	x := randVec(3, 32*16)
	y := make([]complex128, len(x))
	if err := p.Transform(y, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	// The recorder saw both stages; check the first stage's schedule by
	// running it in isolation.
	tr2 := trace.New()
	p2, _ := NewPlan(32, 16, Options{
		Strategy: DoubleBuf, Mu: 4, BufferElems: 64,
		DataWorkers: 1, ComputeWorkers: 1, Tracer: tr2,
	})
	_ = p2.Transform(y, x, fft1d.Forward)
	evs := tr2.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewPlan(0, 4, Options{}); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewPlan(4, -1, Options{}); err == nil {
		t.Error("accepted m=-1")
	}
	if _, err := NewPlan(8, 6, Options{Strategy: DoubleBuf, Mu: 4}); err == nil {
		t.Error("accepted μ that does not divide m")
	}
	p, _ := NewPlan(4, 4, Options{})
	if err := p.Transform(make([]complex128, 15), make([]complex128, 16), fft1d.Forward); err == nil {
		t.Error("accepted bad dst length")
	}
	if err := p.InPlace(make([]complex128, 15), fft1d.Forward); err == nil {
		t.Error("accepted bad InPlace length")
	}
}

func TestStrategyStrings(t *testing.T) {
	if Reference.String() != "reference" || Pencil.String() != "pencil" || DoubleBuf.String() != "doublebuf" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() != "strategy(9)" {
		t.Fatal("unknown strategy name wrong")
	}
}

func TestLargestDivisorAtMost(t *testing.T) {
	cases := []struct{ n, cap, want int }{
		{12, 5, 4}, {12, 12, 12}, {12, 100, 12}, {7, 3, 1}, {16, 6, 4}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := largestDivisorAtMost(c.n, c.cap); got != c.want {
			t.Errorf("largestDivisorAtMost(%d, %d) = %d, want %d", c.n, c.cap, got, c.want)
		}
	}
}

func TestAllStrategiesAgreeLarger(t *testing.T) {
	const n, m = 128, 256
	x := randVec(123, n*m)
	want := make([]complex128, len(x))
	ref, _ := NewPlan(n, m, Options{Strategy: Reference})
	if err := ref.Transform(want, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Strategy: Pencil, Workers: 3},
		{Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2, BufferElems: 1 << 12},
		{Strategy: DoubleBuf, DataWorkers: 2, ComputeWorkers: 2, BufferElems: 1 << 12, SplitFormat: true},
	} {
		p, err := NewPlan(n, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, len(x))
		if err := p.Transform(got, x, fft1d.Forward); err != nil {
			t.Fatal(err)
		}
		if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(n*m) {
			t.Errorf("%v disagrees with reference: %g", opts.Strategy, d)
		}
	}
}

func benchPlan(b *testing.B, opts Options) {
	const n, m = 512, 512
	p, err := NewPlan(n, m, opts)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(1, n*m)
	y := make([]complex128, n*m)
	b.SetBytes(int64(n * m * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Transform(y, x, fft1d.Forward); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2DPencil(b *testing.B) {
	benchPlan(b, Options{Strategy: Pencil, Workers: 2})
}

func Benchmark2DDoubleBuf(b *testing.B) {
	benchPlan(b, Options{Strategy: DoubleBuf, DataWorkers: 1, ComputeWorkers: 1, BufferElems: 1 << 14})
}

func Benchmark2DDoubleBufSplit(b *testing.B) {
	benchPlan(b, Options{Strategy: DoubleBuf, DataWorkers: 1, ComputeWorkers: 1, BufferElems: 1 << 14, SplitFormat: true})
}

func TestDoubleBufBufferSmallerThanRow(t *testing.T) {
	// The paper leaves "size of the 1D FFT equal or greater than the
	// shared buffer" as future work for the 2D case (§V). Our planner
	// handles it by degrading to one-row blocks (rows1 = 1), paying the
	// un-amortized panel cost the paper predicts but staying correct.
	const n, m = 8, 256
	p, err := NewPlan(n, m, Options{
		Strategy: DoubleBuf, Mu: 4, BufferElems: 64, // b = 64 < m = 256
		DataWorkers: 2, ComputeWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stage1Iters() != n {
		t.Fatalf("expected one-row blocks (iters=%d), got %d", n, p.Stage1Iters())
	}
	x := randVec(88, n*m)
	got := make([]complex128, n*m)
	if err := p.Transform(got, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewPlan(n, m, Options{Strategy: Reference})
	want := make([]complex128, n*m)
	if err := ref.Transform(want, x, fft1d.Forward); err != nil {
		t.Fatal(err)
	}
	if d := cvec.MaxDiff(cvec.Vec(got), cvec.Vec(want)); d > tol*float64(n*m) {
		t.Fatalf("b<m case wrong: %g", d)
	}
}
