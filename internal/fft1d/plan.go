// Package fft1d implements plan-based one-dimensional fast Fourier
// transforms over complex128 data.
//
// The planner covers:
//
//   - power-of-two sizes via an iterative Stockham autosort decomposition
//     (no bit-reversal pass, contiguous writes) in ⌈log₄(n)⌉ passes: radix-4
//     stages plus one leading radix-8 stage when log₂(n) is odd, with pure
//     radix-4/2 mixes selectable via NewPlanRadix for tuning and ablation;
//   - arbitrary composite sizes via a recursive mixed-radix Cooley–Tukey
//     factorization, DFT_mn = (DFT_m ⊗ I_n) D_n^{mn} (I_m ⊗ DFT_n) L_m^{mn},
//     with hand-unrolled base codelets for 2,3,4,5,7,8;
//   - large prime sizes via Bluestein's chirp-z algorithm on top of the
//     power-of-two path.
//
// Every driver accepts a lane count μ, so the same plan computes DFT_n ⊗ I_μ
// — the cacheline-granularity vector kernel at the heart of the paper's
// blocked decompositions — as well as plain pencils (μ = 1), batched pencils
// (I_b ⊗ DFT_n) and strided pencils (gather/scatter, used by the baseline
// implementations).
//
// Forward transforms are unnormalized; inverse transforms are unnormalized
// too (apply Scale(x, 1/n) for a round trip). This matches FFTW convention.
package fft1d

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/kernels"
	"repro/internal/lru"
	"repro/internal/twiddle"
)

// Direction re-exports for convenience.
const (
	Forward = kernels.Forward
	Inverse = kernels.Inverse
)

// planKind discriminates the algorithm a Plan uses.
type planKind int

const (
	kindSmall     planKind = iota // dense/unrolled codelet
	kindPow2                      // iterative Stockham radix-4/2
	kindMixed                     // recursive Cooley–Tukey split n = f · rest
	kindBluestein                 // chirp-z for large primes
)

// Plan holds the precomputed factorization and twiddle tables for a 1D DFT
// of a fixed size. Plans are immutable after construction and safe for
// concurrent use; scratch buffers are always supplied by the caller or drawn
// from an internal pool.
type Plan struct {
	n    int
	kind planKind
	// maxRadix is the largest Stockham stage radix a pow2 plan may use
	// (2, 4, 8 or 16); 0 for non-pow2 plans, where it is meaningless.
	maxRadix int

	// kindSmall
	small func(dst, src []complex128, sign int)

	// kindPow2: radices of each Stockham stage, outermost first, and the
	// per-stage twiddles for each direction (index 0 forward, 1 inverse),
	// built lazily. The split-format drivers run their own stage chain
	// (splitRadices): there is no split radix-16 codelet and the split
	// radix-8 one underruns the radix-4 pair it replaces, so split plans
	// prefer radix-4 chains while the interleaved chain uses the fused
	// radix-16 codelets.
	radices      []int
	splitRadices []int
	stageOnce    [2]sync.Once
	stages       [2][]kernels.StageTwiddles
	splitOnce    [2]sync.Once
	splitStages  [2][]kernels.SplitTwiddles

	// kindMixed: n = f · rest.
	f, rest  int
	subF     *Plan
	subRest  *Plan
	diagOnce [2]sync.Once
	diag     [2][]complex128 // D_rest^{n} twiddles

	// kindBluestein
	blue *bluesteinPlan
}

// planKey caches plans by size and radix preference. Sizes where the radix
// is meaningless (non-pow2, codelet) normalize radix to 0 so all callers
// share one entry.
type planKey struct{ n, radix int }

// planCacheCapacity bounds the process-wide plan cache. Long-running servers
// sweep many sizes (every mixed-radix factorization plants sub-plans here
// too), and an unbounded map retains every twiddle table ever built; 128
// entries cover any realistic working set while letting cold sizes fall to
// the GC. Plans are immutable data with nothing to tear down, so eviction
// needs no onClose and callers never hold cache references.
const planCacheCapacity = 128

var planCache = lru.New[planKey, *Plan](planCacheCapacity, nil)

// NewPlan returns a (possibly cached) plan for size n ≥ 1 using the default
// radix mix (fused radix-16 sweeps for power-of-two sizes).
func NewPlan(n int) *Plan { return NewPlanRadix(n, 0) }

// NewPlanRadix returns a (possibly cached) plan for size n ≥ 1 whose
// power-of-two path uses Stockham stages of radix at most maxRadix ∈
// {2, 4, 8, 16}; 0 selects the default (16: fused two-stage codelets with a
// trailing radix-4 stage reserved for store folding, see pow2Radices).
// Lower radices make more passes over the buffer and exist for tuning and
// ablation. maxRadix only affects power-of-two sizes > 8; other sizes share
// one plan. The cap applies to the interleaved chain; split-format drivers
// run a radix-4-preferring chain of their own regardless (see splitChain).
func NewPlanRadix(n, maxRadix int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft1d: NewPlanRadix(%d): size must be ≥ 1", n))
	}
	switch maxRadix {
	case 0:
		maxRadix = 16
	case 2, 4, 8, 16:
	default:
		panic(fmt.Sprintf("fft1d: NewPlanRadix(%d, %d): radix must be 0, 2, 4, 8 or 16", n, maxRadix))
	}
	key := planKey{n: n, radix: maxRadix}
	if n <= 8 || n&(n-1) != 0 {
		key.radix = 0 // radix is irrelevant; share the plan
	}
	p, release, _ := planCache.GetOrCreate(key, func() (*Plan, error) {
		return buildPlan(n, maxRadix), nil
	})
	// Released immediately: an evicted plan stays valid for everyone still
	// pointing at it (it is just dropped to the GC), so holding a cache
	// reference for the plan's lifetime would buy nothing.
	release()
	return p
}

// PlanCacheStats reports the plan cache's effectiveness counters.
func PlanCacheStats() lru.Stats { return planCache.Stats() }

// N returns the transform size.
func (p *Plan) N() int { return p.n }

// Kind returns a short human-readable description of the algorithm chosen.
func (p *Plan) Kind() string {
	switch p.kind {
	case kindSmall:
		return "codelet"
	case kindPow2:
		return "stockham-pow2"
	case kindMixed:
		return fmt.Sprintf("mixed(%d×%d)", p.f, p.rest)
	case kindBluestein:
		return "bluestein"
	}
	return "unknown"
}

func buildPlan(n, maxRadix int) *Plan {
	p := &Plan{n: n}
	switch {
	case n <= 8:
		p.kind = kindSmall
		p.small = kernels.Small(n)
	case n&(n-1) == 0:
		p.kind = kindPow2
		p.maxRadix = maxRadix
		p.radices = pow2Radices(n, maxRadix)
		p.splitRadices = splitChain(n, maxRadix)
	default:
		f := smallestCodeletFactor(n)
		if f == 0 {
			// n is prime (or has no small factor and is itself prime
			// since smallestCodeletFactor scans all primes ≤ √n).
			p.kind = kindBluestein
			p.blue = newBluestein(n)
		} else {
			p.kind = kindMixed
			p.f = f
			p.rest = n / f
			p.subF = NewPlan(f)
			p.subRest = NewPlan(n / f)
		}
	}
	return p
}

// pow2Radices returns the Stockham stage radices for n = 2^k under a radix
// cap.
//
// maxRadix 16 (the default) packs the front of the chain with fused
// radix-16 codelets — each one computes two radix-4 rank stages in
// registers, halving the passes over the buffer — while always reserving a
// trailing radix-4 stage: the final stage's table twiddles are trivial
// (W_j[0] = 1 since m = 1), which lets the stage-graph executor fold that
// whole sweep into its scatter/store leg instead of running it as a
// separate pass. A leading radix-8 stage absorbs odd k as before.
//
// maxRadix 8 uses one leading radix-8 stage when k is odd and radix-4
// stages for everything else: measured on amd64, the 8-wide butterfly's 16
// live complex values spill past the vector register file, so chains of
// radix-8 stages lose to radix-4 per element — but a single radix-8 stage
// replaces the radix-2 stage an odd k otherwise needs, saving a whole pass
// over the buffer (the first stage, where its reads are unit-stride, is
// the cheapest place for it). maxRadix 4 is the pre-radix-8 plan (one
// leading radix-2 when k is odd); maxRadix 2 is the k-pass ablation
// baseline.
func pow2Radices(n, maxRadix int) []int {
	k := bits.TrailingZeros(uint(n))
	var r []int
	switch maxRadix {
	case 2:
		for ; k > 0; k-- {
			r = append(r, 2)
		}
	case 4:
		if k%2 == 1 {
			r = append(r, 2)
			k--
		}
		for ; k > 0; k -= 2 {
			r = append(r, 4)
		}
	case 8:
		if k%2 == 1 {
			r = append(r, 8)
			k -= 3
		}
		for ; k > 0; k -= 2 {
			r = append(r, 4)
		}
	default: // 16: fused pairs up front, trailing radix-4 reserved for folding
		switch k {
		case 4:
			return []int{4, 4}
		case 5:
			return []int{8, 4}
		case 6:
			return []int{16, 4}
		case 7:
			return []int{8, 4, 4}
		}
		if k%4 == 0 {
			// A pure radix-16 chain needs no odd trailing stage, and
			// measured on amd64 it beats reserving a radix-4 for the
			// store fold: the fold's leg-major scatter re-reads each
			// input four times, which costs more than the sweep the
			// fold saves when the sweep count is already minimal.
			for ; k > 0; k -= 4 {
				r = append(r, 16)
			}
			return r
		}
		rem := k - 2 // trailing radix-4 reserved
		if rem%2 == 1 {
			r = append(r, 8)
			rem -= 3
		}
		for ; rem >= 4; rem -= 4 {
			r = append(r, 16)
		}
		if rem == 2 {
			r = append(r, 4)
		}
		r = append(r, 4)
	}
	return r
}

// splitChain returns the split-format stage chain. The split drivers have
// no radix-16 codelet (the fused butterfly's 64 live re/im accumulators
// spill far past the 16-register file) and the split radix-8 codelet
// underruns two radix-4 passes on even k, so the split chain prefers
// radix-4 stages, keeping a single leading radix-8 only to absorb odd k
// without a radix-2 pass.
func splitChain(n, maxRadix int) []int {
	if maxRadix > 8 {
		maxRadix = 8
	}
	return pow2Radices(n, maxRadix)
}

// smallestCodeletFactor returns the preferred factor to peel from composite
// n: the largest codelet size in {8,4,2,3,5,7} dividing n, else the smallest
// prime factor ≤ 31; 0 if n is prime.
func smallestCodeletFactor(n int) int {
	for _, f := range []int{8, 4, 5, 7, 3, 2} {
		if n%f == 0 {
			return f
		}
	}
	for f := 11; f*f <= n; f += 2 {
		if n%f == 0 {
			return f
		}
	}
	return 0
}

func signIdx(sign int) int {
	if sign == Forward {
		return 0
	}
	return 1
}

// stageTwiddles returns the lazily built per-stage twiddles for direction
// sign on a pow2 plan.
func (p *Plan) stageTwiddles(sign int) []kernels.StageTwiddles {
	i := signIdx(sign)
	p.stageOnce[i].Do(func() {
		st := make([]kernels.StageTwiddles, len(p.radices))
		n1 := p.n
		for s, r := range p.radices {
			st[s] = kernels.NewStageTwiddles(n1, r, sign)
			n1 /= r
		}
		p.stages[i] = st
	})
	return p.stages[i]
}

// splitTwiddles returns the split-format stage twiddles for direction sign.
// They follow splitRadices, not the interleaved chain — the two chains
// diverge once the interleaved side uses fused radix-16 stages.
func (p *Plan) splitTwiddles(sign int) []kernels.SplitTwiddles {
	i := signIdx(sign)
	p.splitOnce[i].Do(func() {
		st := make([]kernels.SplitTwiddles, len(p.splitRadices))
		n1 := p.n
		for s, r := range p.splitRadices {
			st[s] = kernels.NewSplitTwiddles(kernels.NewStageTwiddles(n1, r, sign))
			n1 /= r
		}
		p.splitStages[i] = st
	})
	return p.splitStages[i]
}

// FoldRadix reports whether the plan's interleaved stage chain ends in a
// stage the stage-graph store leg can absorb: the trailing radix-4 stage of
// a power-of-two chain, whose table twiddles are trivial (m = 1 at the last
// stage, so W_j[0] = 1). It returns that radix (4), or 0 when no stage can
// be folded. Callers that fold run BatchLanesPrefixArena for the compute
// pass and apply the final butterfly during the store.
func (p *Plan) FoldRadix() int {
	if p.kind != kindPow2 || len(p.radices) == 0 {
		return 0
	}
	if last := p.radices[len(p.radices)-1]; last == 4 {
		return 4
	}
	return 0
}

// diagTwiddles returns the mixed-radix D_rest^{n} diagonal for direction
// sign (entry i·rest+j = ω_n^{i·j}, conjugated for the inverse).
func (p *Plan) diagTwiddles(sign int) []complex128 {
	i := signIdx(sign)
	p.diagOnce[i].Do(func() {
		d := twiddle.Shared.Diag(p.f, p.rest)
		if sign == Forward {
			p.diag[i] = d
			return
		}
		c := make([]complex128, len(d))
		for k, w := range d {
			c[k] = complex(real(w), -imag(w))
		}
		p.diag[i] = c
	})
	return p.diag[i]
}

// arenaPool backs the legacy arena-less entry points (Transform, InPlace,
// Batch, …). Plans are cached process-wide in planCache and shared between
// callers, so scratch cannot live unsynchronized on the Plan; the executor
// path threads each compute worker's private arena through the *Arena entry
// points instead, and everything else borrows a pooled arena here. Get/Put
// of a pointer type is allocation-free once the pool is warm.
var arenaPool = sync.Pool{New: func() any { return kernels.NewArena(0, 0) }}

func getArena() *kernels.Arena { return arenaPool.Get().(*kernels.Arena) }

func putArena(a *kernels.Arena) {
	a.Reset()
	arenaPool.Put(a)
}

// Scale multiplies x elementwise by s; use Scale(x, 1/n) after an inverse
// transform for a normalized round trip.
func Scale(x []complex128, s float64) {
	cs := complex(s, 0)
	for i := range x {
		x[i] *= cs
	}
}
