// Command ffttune searches the double-buffering parameters (buffer size,
// p_d : p_c worker split, μ, compute format) empirically on this host and
// optionally persists the winners as a JSON wisdom file for later runs.
//
// Usage:
//
//	ffttune -size 64,64,64                     # tune one 3D size
//	ffttune -size 1024,1024 -reps 5            # 2D
//	ffttune -size 64,64,64 -wisdom wisdom.json # append the winner
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/tune"
)

func main() {
	sizeFlag := flag.String("size", "64,64,64", "k,n,m (3D) or n,m (2D)")
	reps := flag.Int("reps", 3, "repetitions per candidate (best kept)")
	wisdomPath := flag.String("wisdom", "", "wisdom file to update with the winner")
	flag.Parse()

	dims, err := cli.ParseDims(*sizeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffttune:", err)
		os.Exit(2)
	}
	space := tune.DefaultSpace(runtime.GOMAXPROCS(0))

	var best tune.Result
	var all []tune.Result
	var key string
	switch len(dims) {
	case 3:
		best, all, err = tune.Tune3D(dims[0], dims[1], dims[2], space, *reps)
		key = tune.Key3D(dims[0], dims[1], dims[2])
	case 2:
		best, all, err = tune.Tune2D(dims[0], dims[1], space, *reps)
		key = tune.Key2D(dims[0], dims[1])
	default:
		fmt.Fprintln(os.Stderr, "ffttune: need 2 or 3 dimensions")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffttune:", err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "candidate\tseconds")
	for _, r := range all {
		marker := ""
		if r.Candidate == best.Candidate {
			marker = "  ← best"
		}
		fmt.Fprintf(tw, "%s\t%.5f%s\n", r.Candidate, r.Seconds, marker)
	}
	tw.Flush()
	fmt.Printf("\nbest for %s: %s (%.5fs)\n", key, best.Candidate, best.Seconds)

	if *wisdomPath != "" {
		w := tune.NewWisdom()
		if f, err := os.Open(*wisdomPath); err == nil {
			if loaded, lerr := tune.LoadWisdom(f); lerr == nil {
				w = loaded
			}
			f.Close()
		}
		w.Put(key, best.Candidate)
		f, err := os.Create(*wisdomPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffttune:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := w.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "ffttune:", err)
			os.Exit(1)
		}
		fmt.Printf("wisdom updated: %s\n", *wisdomPath)
	}
}
