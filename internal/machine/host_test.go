package machine

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCacheIndex(t *testing.T, root, name, level, size string) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "level"), []byte(level+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "size"), []byte(size+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestHostLLCBytesFromFixture(t *testing.T) {
	root := t.TempDir()
	writeCacheIndex(t, root, "index0", "1", "32K")
	writeCacheIndex(t, root, "index1", "1", "48K")
	writeCacheIndex(t, root, "index2", "2", "2048K")
	writeCacheIndex(t, root, "index3", "3", "20M")
	got, ok := hostLLCBytesFrom(filepath.Join(root, "index*"))
	if !ok || got != 20<<20 {
		t.Fatalf("hostLLCBytesFrom = %d, %v; want %d, true", got, ok, 20<<20)
	}
}

func TestHostLLCBytesFromMissing(t *testing.T) {
	if _, ok := hostLLCBytesFrom(filepath.Join(t.TempDir(), "index*")); ok {
		t.Fatal("expected detection failure on empty tree")
	}
}

func TestHostLLCBytesNeverZero(t *testing.T) {
	if HostLLCBytes() <= 0 {
		t.Fatalf("HostLLCBytes = %d; want > 0", HostLLCBytes())
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"32K", 32 << 10, true},
		{"2048K", 2 << 20, true},
		{"8M", 8 << 20, true},
		{"1G", 1 << 30, true},
		{"123", 123, true},
		{"", 0, false},
		{"xK", 0, false},
		{"-4K", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCacheSize(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseCacheSize(%q) = %d, %v; want %d, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestHostLevelBytesFromFixture(t *testing.T) {
	root := t.TempDir()
	writeCacheIndex(t, root, "index0", "1", "32K")
	writeCacheIndex(t, root, "index1", "1", "48K")
	writeCacheIndex(t, root, "index2", "2", "2048K")
	writeCacheIndex(t, root, "index3", "3", "20M")
	got, ok := hostLevelBytesFrom(filepath.Join(root, "index*"), 2)
	if !ok || got != 2<<20 {
		t.Fatalf("hostLevelBytesFrom(level=2) = %d, %v; want %d, true", got, ok, 2<<20)
	}
	if _, ok := hostLevelBytesFrom(filepath.Join(root, "index*"), 4); ok {
		t.Fatal("expected no level-4 cache in fixture")
	}
	if _, ok := hostLevelBytesFrom(filepath.Join(t.TempDir(), "index*"), 2); ok {
		t.Fatal("expected detection failure on empty tree")
	}
}

func TestPreferredBufferElems(t *testing.T) {
	b := PreferredBufferElems()
	if b < 1<<12 || b > 1<<16 {
		t.Fatalf("PreferredBufferElems = %d; want within [%d, %d]", b, 1<<12, 1<<16)
	}
	if b&(b-1) != 0 {
		t.Fatalf("PreferredBufferElems = %d; want a power of two", b)
	}
	// The derivation contract: both halves fit in a quarter of L2 (unless
	// the lower clamp is in effect on a tiny-L2 host).
	if 2*b*16 > HostL2Bytes()/4 && b > 1<<12 {
		t.Fatalf("staging footprint 2·%d·16 = %d exceeds L2/4 = %d", b, 2*b*16, HostL2Bytes()/4)
	}
}

func TestPreferredMu(t *testing.T) {
	cases := []struct{ m, want int }{
		{256, 8}, {64, 8}, {8, 8},
		{4, 4}, {12, 4}, {20, 4},
		{2, 2}, {6, 2},
		{1, 1}, {3, 1}, {7, 1},
	}
	for _, c := range cases {
		if got := PreferredMu(c.m); got != c.want {
			t.Errorf("PreferredMu(%d) = %d; want %d", c.m, got, c.want)
		}
	}
}
