package repro

// Zero-allocation steady state: once a plan has executed one warm-up
// transform (growing its executor arenas and building lazy twiddle tables),
// every subsequent Transform on the reused plan must perform zero heap
// allocations and spawn zero goroutines — the plan's persistent executor
// wakes its parked workers, replays the compiled schedule, and draws all
// scratch from the per-worker arenas.

import (
	"runtime"
	"testing"

	"repro/internal/fft1d"
)

// assertZeroAllocs runs f once to warm the plan, then asserts the steady
// state allocates nothing and leaves the goroutine count unchanged (no
// worker spawned per run).
func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race (instrumentation allocates; sync.Pool drops items at random)")
	}
	f() // warm-up: lazy twiddles, arena growth, pool fills
	before := runtime.NumGoroutine()
	if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
		t.Errorf("%s: %v allocs per steady-state run, want 0", name, allocs)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("%s: goroutine count grew %d → %d across steady-state runs", name, before, after)
	}
}

func TestSteadyStateZeroAllocs1DBatch(t *testing.T) {
	const n, count = 256, 8
	p := fft1d.NewPlan(n)
	x := make([]complex128, count*n)
	for i := range x {
		x[i] = complex(float64(i%17), float64(i%5))
	}
	assertZeroAllocs(t, "fft1d.Batch", func() {
		p.Batch(x, count, fft1d.Forward)
	})
	re := make([]float64, count*n)
	im := make([]float64, count*n)
	assertZeroAllocs(t, "fft1d.BatchSplit", func() {
		p.BatchSplit(re, im, count, fft1d.Forward)
	})
}

func TestSteadyStateZeroAllocs1DLarge(t *testing.T) {
	// 8192 ≥ the default MinN, so the public FFT1D takes the six-step
	// stage-graph path (128×64 split) through its persistent executor.
	const n = 8192
	p, err := NewFFT1D(n, WithWorkers(2, 2), WithBufferElems(1<<11))
	if err != nil {
		t.Fatal(err)
	}
	if n1, n2 := p.Split(); n2 == 1 {
		t.Fatalf("size %d fell back to direct (%d×%d); test needs the staged path", n, n1, n2)
	}
	src := make([]complex128, n)
	dst := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%23), -float64(i%7))
	}
	assertZeroAllocs(t, "FFT1D.Forward", func() {
		if err := p.Forward(dst, src); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSteadyStateZeroAllocs2D(t *testing.T) {
	for _, split := range []bool{false, true} {
		name := map[bool]string{false: "interleaved", true: "split"}[split]
		t.Run(name, func(t *testing.T) {
			p, err := NewFFT2D(64, 64,
				WithWorkers(2, 2), WithBufferElems(1<<10), WithSplitFormat(split))
			if err != nil {
				t.Fatal(err)
			}
			src := make([]complex128, p.Len())
			dst := make([]complex128, p.Len())
			for i := range src {
				src[i] = complex(float64(i%31), float64(i%11))
			}
			assertZeroAllocs(t, "FFT2D.Forward/"+name, func() {
				if err := p.Forward(dst, src); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

func TestSteadyStateZeroAllocsReal1D(t *testing.T) {
	const n, count = 512, 4
	p, err := NewRealFFT1D(n, WithWorkers(2, 2), WithBufferElems(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	src := make([]float64, count*n)
	for i := range src {
		src[i] = float64(i%19) - 9
	}
	spec := make([]complex128, count*p.SpectrumLen())
	assertZeroAllocs(t, "RealFFT1D.ForwardBatch", func() {
		if err := p.ForwardBatch(spec, src, count); err != nil {
			t.Fatal(err)
		}
	})
	back := make([]float64, count*n)
	assertZeroAllocs(t, "RealFFT1D.InverseBatch", func() {
		if err := p.InverseBatch(back, spec, count); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSteadyStateZeroAllocsReal2D(t *testing.T) {
	p, err := NewRealFFT2D(64, 64, WithWorkers(2, 2), WithBufferElems(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	src := make([]float64, p.RealLen())
	for i := range src {
		src[i] = float64(i%31) - 15
	}
	spec := make([]complex128, p.SpectrumLen())
	assertZeroAllocs(t, "RealFFT2D.Forward", func() {
		if err := p.Forward(spec, src); err != nil {
			t.Fatal(err)
		}
	})
	back := make([]float64, p.RealLen())
	assertZeroAllocs(t, "RealFFT2D.Inverse", func() {
		if err := p.Inverse(back, spec); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSteadyStateZeroAllocsReal3D(t *testing.T) {
	p, err := NewRealFFT3D(16, 16, 32, WithWorkers(2, 2), WithBufferElems(1<<9))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	src := make([]float64, p.RealLen())
	for i := range src {
		src[i] = float64(i%29) - 14
	}
	spec := make([]complex128, p.SpectrumLen())
	assertZeroAllocs(t, "RealFFT3D.Forward", func() {
		if err := p.Forward(spec, src); err != nil {
			t.Fatal(err)
		}
	})
	back := make([]float64, p.RealLen())
	assertZeroAllocs(t, "RealFFT3D.Inverse", func() {
		if err := p.Inverse(back, spec); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSteadyStateZeroAllocs3D(t *testing.T) {
	for _, split := range []bool{false, true} {
		name := map[bool]string{false: "interleaved", true: "split"}[split]
		t.Run(name, func(t *testing.T) {
			p, err := NewFFT3D(16, 16, 32,
				WithWorkers(2, 2), WithBufferElems(1<<9), WithSplitFormat(split))
			if err != nil {
				t.Fatal(err)
			}
			src := make([]complex128, p.Len())
			dst := make([]complex128, p.Len())
			for i := range src {
				src[i] = complex(float64(i%29), -float64(i%13))
			}
			assertZeroAllocs(t, "FFT3D.Forward/"+name, func() {
				if err := p.Forward(dst, src); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}
