// Package core ties the paper's pieces together: it derives execution
// parameters from a machine description exactly the way the paper does —
// buffer b = LLC/2 split into two halves, μ = one cacheline of complex
// elements, half the threads as soft-DMA data workers and half as compute
// workers, SMT or core pairing per vendor (§IV) — and builds the 2D/3D
// plans of internal/fft2d and internal/fft3d from them.
//
// The root repro package re-exports this as the public API.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/fft1d"
	"repro/internal/fft2d"
	"repro/internal/fft3d"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/rfft"
	"repro/internal/stagegraph"
	"repro/internal/trace"
)

// Strategy names accepted by Config.Strategy.
const (
	StrategyReference = "reference"
	StrategyPencil    = "pencil"
	StrategySlab      = "slab"
	StrategyDoubleBuf = "doublebuf"
)

// Config is the resolved execution configuration.
type Config struct {
	Strategy       string
	Mu             int
	BufferElems    int
	DataWorkers    int
	ComputeWorkers int
	Workers        int
	SplitFormat    bool
	// Radix caps the Stockham stage radix of power-of-two 1D sub-plans
	// (0 = default 8; 2/4 select the higher-pass-count mixes).
	Radix int
	// StageFusion runs every transform as one fused stage graph (steady
	// state flows through stage boundaries; one pipeline drain per
	// transform). Default() and ForMachine() enable it; disable for the
	// stage-at-a-time A/B baseline.
	StageFusion bool
	// MachineName, when set to a name internal/machine resolves, attaches
	// that machine's perfmodel prediction to every plan's telemetry so
	// snapshots report measured/predicted divergence. ForMachine sets it.
	MachineName string
	// RooflineGBs is the STREAM peak the telemetry normalizes per-stage
	// bandwidth against. Zero falls back to MachineName's STREAM figure;
	// both zero leaves FracPeak unreported.
	RooflineGBs float64
	Tracer      *trace.Recorder
}

// Default returns the configuration this host would use: the paper's
// buffer/μ rules applied to a generic machine with the host's CPU count.
func Default() Config {
	threads := runtime.GOMAXPROCS(0)
	pd := threads / 2
	if pd < 1 {
		pd = 1
	}
	return Config{
		Strategy:       StrategyDoubleBuf,
		Mu:             4,       // one 64 B cacheline of complex128
		BufferElems:    1 << 16, // two halves ≈ 2 MiB, half a typical LLC
		DataWorkers:    pd,
		ComputeWorkers: pd,
		Workers:        threads,
		SplitFormat:    true,
		StageFusion:    true,
	}
}

// ForMachine returns the paper's configuration for one of the described
// machines: b = LLC/2 over two halves, μ = cacheline, p_d = p_c = threads/2
// per socket.
func ForMachine(m machine.Machine) Config {
	pairs := m.Threads() / 2
	if pairs < 1 {
		pairs = 1
	}
	return Config{
		Strategy:       StrategyDoubleBuf,
		Mu:             m.LLC().LineBytes / 16,
		BufferElems:    m.DefaultBufferElems(),
		DataWorkers:    pairs,
		ComputeWorkers: pairs,
		Workers:        m.Threads(),
		SplitFormat:    true,
		StageFusion:    true,
		MachineName:    m.Name,
		RooflineGBs:    m.StreamGBs,
	}
}

// Roofline resolves the STREAM peak the telemetry should normalize
// against: the explicit figure if set, else the named machine's.
func (c Config) Roofline() float64 {
	if c.RooflineGBs > 0 {
		return c.RooflineGBs
	}
	if c.MachineName != "" {
		if m, err := machine.Lookup(c.MachineName); err == nil {
			return m.StreamGBs
		}
	}
	return 0
}

// model returns the perfmodel for the configured machine, or nil when no
// machine is named (predictions are then simply not attached).
func (c Config) model() *perfmodel.Model {
	if c.MachineName == "" {
		return nil
	}
	m, err := machine.Lookup(c.MachineName)
	if err != nil {
		return nil
	}
	mo := perfmodel.New(m)
	mo.Fused = c.StageFusion
	return mo
}

func (c Config) fft3dOptions() (fft3d.Options, error) {
	s, err := strategy3D(c.Strategy)
	if err != nil {
		return fft3d.Options{}, err
	}
	return fft3d.Options{
		Strategy: s, Mu: c.Mu, BufferElems: c.BufferElems,
		DataWorkers: c.DataWorkers, ComputeWorkers: c.ComputeWorkers,
		Workers: c.Workers, SplitFormat: c.SplitFormat, Radix: c.Radix,
		Unfused: !c.StageFusion, Tracer: c.Tracer,
	}, nil
}

func (c Config) fft2dOptions() (fft2d.Options, error) {
	s, err := strategy2D(c.Strategy)
	if err != nil {
		return fft2d.Options{}, err
	}
	return fft2d.Options{
		Strategy: s, Mu: c.Mu, BufferElems: c.BufferElems,
		DataWorkers: c.DataWorkers, ComputeWorkers: c.ComputeWorkers,
		Workers: c.Workers, SplitFormat: c.SplitFormat, Radix: c.Radix,
		Unfused: !c.StageFusion, Tracer: c.Tracer,
	}, nil
}

func strategy3D(name string) (fft3d.Strategy, error) {
	switch name {
	case StrategyReference:
		return fft3d.Reference, nil
	case StrategyPencil:
		return fft3d.Pencil, nil
	case StrategySlab:
		return fft3d.Slab, nil
	case StrategyDoubleBuf, "":
		return fft3d.DoubleBuf, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

func strategy2D(name string) (fft2d.Strategy, error) {
	switch name {
	case StrategyReference:
		return fft2d.Reference, nil
	case StrategyPencil:
		return fft2d.Pencil, nil
	case StrategySlab:
		// 2D has no slab variant; pencil is the closest baseline.
		return fft2d.Pencil, nil
	case StrategyDoubleBuf, "":
		return fft2d.DoubleBuf, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

// Plan3D is a sized 3D FFT executor.
type Plan3D struct {
	plan *fft3d.Plan
	cfg  Config
	refs atomic.Int32
}

// NewPlan3D builds a 3D plan for a k×n×m cube under cfg.
func NewPlan3D(k, n, m int, cfg Config) (*Plan3D, error) {
	opts, err := cfg.fft3dOptions()
	if err != nil {
		return nil, err
	}
	p, err := fft3d.NewPlan(k, n, m, opts)
	if err != nil {
		return nil, err
	}
	if col := p.Obs(); col != nil {
		col.SetRoofline(cfg.Roofline())
		if mo := cfg.model(); mo != nil {
			col.SetPredicted(mo.DoubleBuf3D(k, n, m, 1).StagePredictions())
		}
	}
	p3 := &Plan3D{plan: p, cfg: cfg}
	p3.refs.Store(1)
	return p3, nil
}

// Forward computes the unnormalized forward transform out of place.
func (p *Plan3D) Forward(dst, src []complex128) error {
	return p.plan.Transform(dst, src, fft1d.Forward)
}

// Inverse computes the normalized inverse transform out of place (a
// Forward followed by Inverse returns the input).
func (p *Plan3D) Inverse(dst, src []complex128) error {
	if err := p.plan.Transform(dst, src, fft1d.Inverse); err != nil {
		return err
	}
	fft1d.Scale(dst, 1/float64(p.plan.Len()))
	return nil
}

// InPlace computes the unnormalized forward transform in place.
func (p *Plan3D) InPlace(x []complex128) error {
	return p.plan.InPlace(x, fft1d.Forward)
}

// ForwardMany transforms count back-to-back cubes out of place.
func (p *Plan3D) ForwardMany(dst, src []complex128, count int) error {
	return p.plan.TransformMany(dst, src, count, fft1d.Forward)
}

// Retain adds a reference to the plan for shared-cache use: each reference
// (including the one a new plan starts with) must be dropped by exactly one
// Close, and the executor's worker team is torn down only when the last
// reference drains. Plain single-owner callers never call Retain.
func (p *Plan3D) Retain() { p.refs.Add(1) }

// Close drops one plan reference; the last drop releases the persistent
// executor workers (a no-op for strategies without one). Releasing is
// idempotent and concurrency-safe — a Close racing a Transform waits for
// it, and excess Closes are absorbed by the underlying plan. Plans dropped
// without Close are reclaimed by a finalizer.
func (p *Plan3D) Close() {
	if p.refs.Add(-1) > 0 {
		return
	}
	p.plan.Close()
}

// Len returns k·n·m.
func (p *Plan3D) Len() int { return p.plan.Len() }

// Dims returns (k, n, m).
func (p *Plan3D) Dims() (int, int, int) { return p.plan.Dims() }

// Plan2D is a sized 2D FFT executor.
type Plan2D struct {
	plan *fft2d.Plan
	n, m int
	refs atomic.Int32
}

// NewPlan2D builds a 2D plan for an n×m matrix under cfg.
func NewPlan2D(n, m int, cfg Config) (*Plan2D, error) {
	opts, err := cfg.fft2dOptions()
	if err != nil {
		return nil, err
	}
	p, err := fft2d.NewPlan(n, m, opts)
	if err != nil {
		return nil, err
	}
	if col := p.Obs(); col != nil {
		col.SetRoofline(cfg.Roofline())
		if mo := cfg.model(); mo != nil {
			col.SetPredicted(mo.DoubleBuf2D(n, m).StagePredictions())
		}
	}
	p2 := &Plan2D{plan: p, n: n, m: m}
	p2.refs.Store(1)
	return p2, nil
}

// Forward computes the unnormalized forward transform out of place.
func (p *Plan2D) Forward(dst, src []complex128) error {
	return p.plan.Transform(dst, src, fft1d.Forward)
}

// Inverse computes the normalized inverse transform out of place.
func (p *Plan2D) Inverse(dst, src []complex128) error {
	if err := p.plan.Transform(dst, src, fft1d.Inverse); err != nil {
		return err
	}
	fft1d.Scale(dst, 1/float64(p.n*p.m))
	return nil
}

// InPlace computes the unnormalized forward transform in place.
func (p *Plan2D) InPlace(x []complex128) error {
	return p.plan.InPlace(x, fft1d.Forward)
}

// Retain adds a reference to the plan for shared-cache use; see
// Plan3D.Retain.
func (p *Plan2D) Retain() { p.refs.Add(1) }

// Close drops one plan reference; the last drop releases the persistent
// executor workers. See Plan3D.Close.
func (p *Plan2D) Close() {
	if p.refs.Add(-1) > 0 {
		return
	}
	p.plan.Close()
}

// Len returns n·m.
func (p *Plan2D) Len() int { return p.n * p.m }

// Dims returns (n, m).
func (p *Plan2D) Dims() (int, int) { return p.n, p.m }

func (c Config) rfftOptions() rfft.Options {
	// Real plans always run the stage-graph pipeline; Strategy, Workers and
	// SplitFormat (pair-packed endpoints are interleaved-only) don't apply.
	return rfft.Options{
		Mu: c.Mu, BufferElems: c.BufferElems,
		DataWorkers: c.DataWorkers, ComputeWorkers: c.ComputeWorkers,
		Radix: c.Radix, Unfused: !c.StageFusion, Tracer: c.Tracer,
	}
}

// RealPlan1D is a sized, batched real-input (r2c/c2r) 1D FFT executor.
type RealPlan1D struct {
	plan *rfft.Plan1D
	refs atomic.Int32
}

// NewRealPlan1D builds a real-input plan for even length n under cfg.
func NewRealPlan1D(n int, cfg Config) (*RealPlan1D, error) {
	p, err := rfft.NewPlan1D(n, cfg.rfftOptions())
	if err != nil {
		return nil, err
	}
	p.SetRoofline(cfg.Roofline())
	rp := &RealPlan1D{plan: p}
	rp.refs.Store(1)
	return rp, nil
}

// Forward computes the unnormalized half spectrum X[0…n/2] of a real row.
func (p *RealPlan1D) Forward(dst []complex128, src []float64) error {
	return p.plan.Forward(dst, src)
}

// ForwardBatch transforms count contiguously packed real rows at once.
func (p *RealPlan1D) ForwardBatch(dst []complex128, src []float64, count int) error {
	return p.plan.ForwardBatch(dst, src, count)
}

// Inverse reconstructs the real row (normalized; Inverse ∘ Forward = id).
// The imaginary parts of the self-conjugate bins src[0] and src[n/2] are
// forced to zero; src is not modified.
func (p *RealPlan1D) Inverse(dst []float64, src []complex128) error {
	return p.plan.Inverse(dst, src)
}

// InverseBatch reconstructs count contiguously packed real rows at once.
func (p *RealPlan1D) InverseBatch(dst []float64, src []complex128, count int) error {
	return p.plan.InverseBatch(dst, src, count)
}

// N returns the real length; SpectrumLen returns n/2+1.
func (p *RealPlan1D) N() int { return p.plan.N() }

// SpectrumLen returns n/2+1.
func (p *RealPlan1D) SpectrumLen() int { return p.plan.SpectrumLen() }

// Retain adds a reference for shared-cache use; see Plan3D.Retain.
func (p *RealPlan1D) Retain() { p.refs.Add(1) }

// Close drops one plan reference; the last drop releases the persistent
// executor workers. See Plan3D.Close.
func (p *RealPlan1D) Close() {
	if p.refs.Add(-1) > 0 {
		return
	}
	p.plan.Close()
}

// Observability returns the plan's merged forward+inverse telemetry.
func (p *RealPlan1D) Observability() Observability { return p.plan.Observability() }

// Stats returns the executor statistics of the most recent transform.
func (p *RealPlan1D) Stats() Stats { return p.plan.Stats() }

// DescribeGraph renders the compiled forward and inverse stage graphs.
func (p *RealPlan1D) DescribeGraph() string { return p.plan.DescribeGraph() }

// RealPlan2D is a sized real-input (r2c/c2r) 2D FFT executor.
type RealPlan2D struct {
	plan *rfft.Plan2D
	refs atomic.Int32
}

// NewRealPlan2D builds a real-input plan for an n×m grid (m even) under cfg.
func NewRealPlan2D(n, m int, cfg Config) (*RealPlan2D, error) {
	p, err := rfft.NewPlan2D(n, m, cfg.rfftOptions())
	if err != nil {
		return nil, err
	}
	p.SetRoofline(cfg.Roofline())
	rp := &RealPlan2D{plan: p}
	rp.refs.Store(1)
	return rp, nil
}

// Forward computes the unnormalized half spectrum (n×(m/2+1)).
func (p *RealPlan2D) Forward(dst []complex128, src []float64) error {
	return p.plan.Forward(dst, src)
}

// Inverse reconstructs the real grid (normalized); src is not modified.
func (p *RealPlan2D) Inverse(dst []float64, src []complex128) error {
	return p.plan.Inverse(dst, src)
}

// Dims returns (n, m).
func (p *RealPlan2D) Dims() (int, int) { return p.plan.Dims() }

// SpectrumLen returns n·(m/2+1); RealLen returns n·m.
func (p *RealPlan2D) SpectrumLen() int { return p.plan.SpectrumLen() }

// RealLen returns n·m.
func (p *RealPlan2D) RealLen() int { return p.plan.RealLen() }

// Retain adds a reference for shared-cache use; see Plan3D.Retain.
func (p *RealPlan2D) Retain() { p.refs.Add(1) }

// Close drops one plan reference; the last drop releases the persistent
// executor workers. See Plan3D.Close.
func (p *RealPlan2D) Close() {
	if p.refs.Add(-1) > 0 {
		return
	}
	p.plan.Close()
}

// Observability returns the plan's merged forward+inverse telemetry.
func (p *RealPlan2D) Observability() Observability { return p.plan.Observability() }

// Stats returns the executor statistics of the most recent transform.
func (p *RealPlan2D) Stats() Stats { return p.plan.Stats() }

// DescribeGraph renders the compiled forward and inverse stage graphs.
func (p *RealPlan2D) DescribeGraph() string { return p.plan.DescribeGraph() }

// RealPlan3D is a sized real-input (r2c/c2r) 3D FFT executor.
type RealPlan3D struct {
	plan *rfft.Plan3D
	refs atomic.Int32
}

// NewRealPlan3D builds a real-input plan for a k×n×m cube (m even) under cfg.
func NewRealPlan3D(k, n, m int, cfg Config) (*RealPlan3D, error) {
	p, err := rfft.NewPlan3D(k, n, m, cfg.rfftOptions())
	if err != nil {
		return nil, err
	}
	p.SetRoofline(cfg.Roofline())
	rp := &RealPlan3D{plan: p}
	rp.refs.Store(1)
	return rp, nil
}

// Forward computes the unnormalized half spectrum (k×n×(m/2+1)).
func (p *RealPlan3D) Forward(dst []complex128, src []float64) error {
	return p.plan.Forward(dst, src)
}

// Inverse reconstructs the real cube (normalized); src is not modified.
func (p *RealPlan3D) Inverse(dst []float64, src []complex128) error {
	return p.plan.Inverse(dst, src)
}

// Dims returns (k, n, m).
func (p *RealPlan3D) Dims() (int, int, int) { return p.plan.Dims() }

// SpectrumLen returns k·n·(m/2+1); RealLen returns k·n·m.
func (p *RealPlan3D) SpectrumLen() int { return p.plan.SpectrumLen() }

// RealLen returns k·n·m.
func (p *RealPlan3D) RealLen() int { return p.plan.RealLen() }

// Retain adds a reference for shared-cache use; see Plan3D.Retain.
func (p *RealPlan3D) Retain() { p.refs.Add(1) }

// Close drops one plan reference; the last drop releases the persistent
// executor workers. See Plan3D.Close.
func (p *RealPlan3D) Close() {
	if p.refs.Add(-1) > 0 {
		return
	}
	p.plan.Close()
}

// Observability returns the plan's merged forward+inverse telemetry.
func (p *RealPlan3D) Observability() Observability { return p.plan.Observability() }

// Stats returns the executor statistics of the most recent transform.
func (p *RealPlan3D) Stats() Stats { return p.plan.Stats() }

// DescribeGraph renders the compiled forward and inverse stage graphs.
func (p *RealPlan3D) DescribeGraph() string { return p.plan.DescribeGraph() }

// Stats is the whole-transform executor statistics of a DoubleBuf plan:
// total pipeline steps, aggregate data-mover and compute time, and the
// fraction of data time hidden behind compute.
type Stats = stagegraph.Stats

// Observability is the cumulative bandwidth-accounting snapshot of a plan:
// per-stage bytes, effective GB/s, fraction of the roofline, overlap
// occupancy, barrier wait, and perfmodel divergence.
type Observability = obs.Snapshot

// Observability returns the plan's cumulative telemetry snapshot (zero
// value for strategies without a stage-graph executor).
func (p *Plan3D) Observability() Observability { return p.plan.Observability() }

// Observability returns the plan's cumulative telemetry snapshot (zero
// value for strategies without a stage-graph executor).
func (p *Plan2D) Observability() Observability { return p.plan.Observability() }

// Stats returns the executor statistics of the most recent DoubleBuf
// transform (zero value before the first, or for other strategies).
func (p *Plan3D) Stats() Stats { return p.plan.Stats() }

// DescribeGraph renders the compiled stage graph the plan executes; empty
// for non-DoubleBuf strategies.
func (p *Plan3D) DescribeGraph() string { return p.plan.DescribeGraph() }

// Stats returns the executor statistics of the most recent DoubleBuf
// transform (zero value before the first, or for other strategies).
func (p *Plan2D) Stats() Stats { return p.plan.Stats() }

// DescribeGraph renders the compiled stage graph the plan executes; empty
// for non-DoubleBuf strategies.
func (p *Plan2D) DescribeGraph() string { return p.plan.DescribeGraph() }
