package spl

import "fmt"

// L returns the stride permutation L_n^{mn} following the paper's
// definition:
//
//	L_n^{mn}: i·n + j → j·m + i,  0 ≤ i < m, 0 ≤ j < n,
//
// i.e. reading the input as an m×n row-major matrix and writing its
// transpose. The first argument is the total size mn, the second the
// subscript n; mn must be divisible by n.
func L(mn, n int) Formula {
	if n < 1 || mn < 1 || mn%n != 0 {
		panic(fmt.Sprintf("spl: L(%d, %d) invalid", mn, n))
	}
	m := mn / n
	to := make([]int, mn)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			to[i*n+j] = j*m + i
		}
	}
	return perm{to, fmt.Sprintf("L^{%d}_%d", mn, n)}
}

// K returns the paper's 3D rotation
//
//	K_m^{k,n} = (L_m^{mk} ⊗ I_n) · (I_k ⊗ L_m^{mn})
//
// acting on a k×n×m row-major cube (z, y, x) and producing the m×k×n cube
// with out[x][z][y] = in[z][y][x] (Fig. 5). The arguments are (k, n, m).
func K(k, n, m int) Formula {
	if k < 1 || n < 1 || m < 1 {
		panic(fmt.Sprintf("spl: K(%d, %d, %d) invalid", k, n, m))
	}
	to := make([]int, k*n*m)
	for z := 0; z < k; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < m; x++ {
				to[(z*n+y)*m+x] = (x*k+z)*n + y
			}
		}
	}
	return perm{to, fmt.Sprintf("K_%d^{%d,%d}", m, k, n)}
}

// ------------------------------------------------ sliding windows S and G

type scatterWin struct{ n, b, i int }

// S returns the paper's S_{n,b,i} ∈ R^{n×b}: the operator that writes a
// b-element block into slot i of an n-element vector (all other outputs
// zero). n must be divisible by b and 0 ≤ i < n/b.
func S(n, b, i int) Formula {
	if b < 1 || n < b || n%b != 0 || i < 0 || i >= n/b {
		panic(fmt.Sprintf("spl: S(%d, %d, %d) invalid", n, b, i))
	}
	return scatterWin{n, b, i}
}

func (f scatterWin) Rows() int      { return f.n }
func (f scatterWin) Cols() int      { return f.b }
func (f scatterWin) String() string { return fmt.Sprintf("S_{%d,%d,%d}", f.n, f.b, f.i) }
func (f scatterWin) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	for j := range dst {
		dst[j] = 0
	}
	copy(dst[f.i*f.b:(f.i+1)*f.b], src)
}

type gatherWin struct{ n, b, i int }

// G returns G_{n,b,i} ∈ R^{b×n}, the transpose of S_{n,b,i}: it reads the
// i-th b-element block out of an n-element vector.
func G(n, b, i int) Formula {
	if b < 1 || n < b || n%b != 0 || i < 0 || i >= n/b {
		panic(fmt.Sprintf("spl: G(%d, %d, %d) invalid", n, b, i))
	}
	return gatherWin{n, b, i}
}

func (f gatherWin) Rows() int      { return f.b }
func (f gatherWin) Cols() int      { return f.n }
func (f gatherWin) String() string { return fmt.Sprintf("G_{%d,%d,%d}", f.n, f.b, f.i) }
func (f gatherWin) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	copy(dst, src[f.i*f.b:(f.i+1)*f.b])
}

// PermTargets returns the destination-index table of a permutation formula
// (dst[to[i]] = src[i]) and true, or nil and false if f is not a plain
// permutation node.
func PermTargets(f Formula) ([]int, bool) {
	if p, ok := f.(perm); ok {
		return append([]int(nil), p.to...), true
	}
	return nil, false
}
