package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/cvec"
	"repro/internal/fft1d"
	"repro/internal/fft2d"
	"repro/internal/fft3d"
	"repro/internal/perfmodel"
	"repro/internal/stream"
)

// MeasuredConfig sizes a real (host-executed) sweep.
type MeasuredConfig struct {
	// Sizes3D to run (defaults to cubes 32..128).
	Sizes3D [][3]int
	// Sizes2D to run (defaults to squares 128..1024).
	Sizes2D [][2]int
	// Reps per measurement (default 3; best is reported).
	Reps int
	// DataWorkers/ComputeWorkers for the double-buffered runs and the
	// worker pool for baselines.
	DataWorkers    int
	ComputeWorkers int
	BufferElems    int
	// HostBWGBs is the host's STREAM bandwidth for percent-of-peak
	// normalization; 0 measures it first.
	HostBWGBs float64
}

func (c MeasuredConfig) withDefaults() MeasuredConfig {
	if len(c.Sizes3D) == 0 {
		c.Sizes3D = [][3]int{{32, 32, 32}, {64, 64, 64}, {128, 64, 64}, {128, 128, 128}}
	}
	if len(c.Sizes2D) == 0 {
		c.Sizes2D = [][2]int{{128, 128}, {256, 512}, {512, 512}, {1024, 1024}}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.DataWorkers == 0 {
		c.DataWorkers = 1
	}
	if c.ComputeWorkers == 0 {
		c.ComputeWorkers = 1
	}
	if c.BufferElems == 0 {
		c.BufferElems = 1 << 14
	}
	return c
}

func timeBest(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		el := time.Since(start)
		if r == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// Measured3D runs the real pencil, slab and double-buffered 3D
// implementations on the host at the configured sizes and prints seconds,
// pseudo-Gflop/s and percent of this host's achievable peak.
func Measured3D(w io.Writer, cfg MeasuredConfig) error {
	cfg = cfg.withDefaults()
	if cfg.HostBWGBs == 0 {
		cfg.HostBWGBs = stream.BestCopyGBs(stream.Config{Elems: 1 << 22, Trials: 3})
	}
	fmt.Fprintf(w, "Measured 3D sweep on this host (STREAM copy ≈ %.1f GB/s)\n", cfg.HostBWGBs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tpencil\tslab\tdoublebuf\tdoublebuf pct-peak\tdb/pencil")
	for _, s := range cfg.Sizes3D {
		elems := s[0] * s[1] * s[2]
		x := make([]complex128, elems)
		for i := range x {
			x[i] = complex(float64(i%17)-8, float64(i%13)-6)
		}
		y := make([]complex128, elems)

		secs := map[string]float64{}
		for _, strat := range []struct {
			name string
			s    fft3d.Strategy
		}{{"pencil", fft3d.Pencil}, {"slab", fft3d.Slab}, {"doublebuf", fft3d.DoubleBuf}} {
			p, err := fft3d.NewPlan(s[0], s[1], s[2], fft3d.Options{
				Strategy: strat.s, BufferElems: cfg.BufferElems,
				DataWorkers: cfg.DataWorkers, ComputeWorkers: cfg.ComputeWorkers,
				Workers: cfg.DataWorkers + cfg.ComputeWorkers,
			})
			if err != nil {
				return err
			}
			d, err := timeBest(cfg.Reps, func() error {
				return p.Transform(y, x, fft1d.Forward)
			})
			if err != nil {
				return err
			}
			secs[strat.name] = d.Seconds()
		}
		peak := perfmodel.AchievablePeakGflops(elems, 3, cfg.HostBWGBs)
		db := perfmodel.PseudoGflops(elems, secs["doublebuf"])
		fmt.Fprintf(tw, "%dx%dx%d\t%.4fs\t%.4fs\t%.4fs\t%.0f%%\t%.2fx\n",
			s[0], s[1], s[2], secs["pencil"], secs["slab"], secs["doublebuf"],
			db/peak*100, secs["pencil"]/secs["doublebuf"])
	}
	return tw.Flush()
}

// Measured2D is Measured3D for the 2D implementations (pencil baseline vs
// double-buffered).
func Measured2D(w io.Writer, cfg MeasuredConfig) error {
	cfg = cfg.withDefaults()
	if cfg.HostBWGBs == 0 {
		cfg.HostBWGBs = stream.BestCopyGBs(stream.Config{Elems: 1 << 22, Trials: 3})
	}
	fmt.Fprintf(w, "Measured 2D sweep on this host (STREAM copy ≈ %.1f GB/s)\n", cfg.HostBWGBs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tpencil\tdoublebuf\tdoublebuf pct-peak\tdb/pencil")
	for _, s := range cfg.Sizes2D {
		elems := s[0] * s[1]
		x := cvec.New(elems)
		for i := range x {
			x[i] = complex(float64(i%11)-5, float64(i%7)-3)
		}
		y := make([]complex128, elems)

		secs := map[string]float64{}
		for _, strat := range []struct {
			name string
			s    fft2d.Strategy
		}{{"pencil", fft2d.Pencil}, {"doublebuf", fft2d.DoubleBuf}} {
			p, err := fft2d.NewPlan(s[0], s[1], fft2d.Options{
				Strategy: strat.s, BufferElems: cfg.BufferElems,
				DataWorkers: cfg.DataWorkers, ComputeWorkers: cfg.ComputeWorkers,
				Workers: cfg.DataWorkers + cfg.ComputeWorkers,
			})
			if err != nil {
				return err
			}
			d, err := timeBest(cfg.Reps, func() error {
				return p.Transform(y, x, fft1d.Forward)
			})
			if err != nil {
				return err
			}
			secs[strat.name] = d.Seconds()
		}
		peak := perfmodel.AchievablePeakGflops(elems, 2, cfg.HostBWGBs)
		db := perfmodel.PseudoGflops(elems, secs["doublebuf"])
		fmt.Fprintf(tw, "%dx%d\t%.4fs\t%.4fs\t%.0f%%\t%.2fx\n",
			s[0], s[1], secs["pencil"], secs["doublebuf"],
			db/peak*100, secs["pencil"]/secs["doublebuf"])
	}
	return tw.Flush()
}
