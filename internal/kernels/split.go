package kernels

// Split-format (block-interleaved) Stockham stages. These are the same
// butterflies as Radix2Step/Radix4Step but over separate real and imaginary
// float64 arrays. This is the layout the paper's compute stages use so that
// vector units consume whole cachelines of reals followed by whole
// cachelines of imaginaries (§IV-A, "Cache aware FFT").

// SplitTwiddles holds split-format per-stage twiddles.
type SplitTwiddles struct {
	Radix        int
	W1Re, W1Im   []float64
	W2Re, W2Im   []float64
	W3Re, W3Im   []float64
	W4Re, W4Im   []float64
	W5Re, W5Im   []float64
	W6Re, W6Im   []float64
	W7Re, W7Im   []float64
	W8Re, W8Im   []float64
	W9Re, W9Im   []float64
	W10Re, W10Im []float64
	W11Re, W11Im []float64
	W12Re, W12Im []float64
	W13Re, W13Im []float64
	W14Re, W14Im []float64
	W15Re, W15Im []float64
}

// legs returns the twiddle planes indexed by output slot (slot 0 is
// untwiddled, so legs[0] is {nil, nil}).
func (st *SplitTwiddles) legs() [16][2][]float64 {
	return [16][2][]float64{
		{}, {st.W1Re, st.W1Im}, {st.W2Re, st.W2Im}, {st.W3Re, st.W3Im},
		{st.W4Re, st.W4Im}, {st.W5Re, st.W5Im}, {st.W6Re, st.W6Im},
		{st.W7Re, st.W7Im}, {st.W8Re, st.W8Im}, {st.W9Re, st.W9Im},
		{st.W10Re, st.W10Im}, {st.W11Re, st.W11Im}, {st.W12Re, st.W12Im},
		{st.W13Re, st.W13Im}, {st.W14Re, st.W14Im}, {st.W15Re, st.W15Im},
	}
}

// NewSplitTwiddles converts interleaved stage twiddles to split format.
func NewSplitTwiddles(tw StageTwiddles) SplitTwiddles {
	split := func(w []complex128) (re, im []float64) {
		re = make([]float64, len(w))
		im = make([]float64, len(w))
		for i, c := range w {
			re[i], im[i] = real(c), imag(c)
		}
		return
	}
	st := SplitTwiddles{Radix: tw.Radix}
	st.W1Re, st.W1Im = split(tw.W1)
	if tw.Radix >= 4 {
		st.W2Re, st.W2Im = split(tw.W2)
		st.W3Re, st.W3Im = split(tw.W3)
	}
	if tw.Radix >= 8 {
		st.W4Re, st.W4Im = split(tw.W4)
		st.W5Re, st.W5Im = split(tw.W5)
		st.W6Re, st.W6Im = split(tw.W6)
		st.W7Re, st.W7Im = split(tw.W7)
	}
	if tw.Radix == 16 {
		st.W8Re, st.W8Im = split(tw.W8)
		st.W9Re, st.W9Im = split(tw.W9)
		st.W10Re, st.W10Im = split(tw.W10)
		st.W11Re, st.W11Im = split(tw.W11)
		st.W12Re, st.W12Im = split(tw.W12)
		st.W13Re, st.W13Im = split(tw.W13)
		st.W14Re, st.W14Im = split(tw.W14)
		st.W15Re, st.W15Im = split(tw.W15)
	}
	return st
}

// SplitRadix2Step performs one Stockham radix-2 stage in split format.
// The arrays hold 2*m groups of s lanes.
func SplitRadix2Step(dstRe, dstIm, srcRe, srcIm []float64, m, s int, tw SplitTwiddles) {
	for p := 0; p < m; p++ {
		wr, wi := tw.W1Re[p], tw.W1Im[p]
		aRe := srcRe[s*p : s*p+s]
		aIm := srcIm[s*p : s*p+s]
		bRe := srcRe[s*(p+m) : s*(p+m)+s]
		bIm := srcIm[s*(p+m) : s*(p+m)+s]
		yaRe := dstRe[s*2*p : s*2*p+s]
		yaIm := dstIm[s*2*p : s*2*p+s]
		ybRe := dstRe[s*(2*p+1) : s*(2*p+1)+s]
		ybIm := dstIm[s*(2*p+1) : s*(2*p+1)+s]
		for q := 0; q < s; q++ {
			ar, ai := aRe[q], aIm[q]
			br, bi := bRe[q], bIm[q]
			yaRe[q] = ar + br
			yaIm[q] = ai + bi
			dr, di := ar-br, ai-bi
			ybRe[q] = dr*wr - di*wi
			ybIm[q] = dr*wi + di*wr
		}
	}
}

// SplitRadix4Step performs one Stockham radix-4 stage in split format.
// sign must match the direction used to build tw.
func SplitRadix4StepGeneric(dstRe, dstIm, srcRe, srcIm []float64, m, s, sign int, tw SplitTwiddles) {
	jim := 1.0
	if sign == Forward {
		jim = -1.0
	}
	for p := 0; p < m; p++ {
		w1r, w1i := tw.W1Re[p], tw.W1Im[p]
		w2r, w2i := tw.W2Re[p], tw.W2Im[p]
		w3r, w3i := tw.W3Re[p], tw.W3Im[p]
		aRe := srcRe[s*p : s*p+s]
		aIm := srcIm[s*p : s*p+s]
		bRe := srcRe[s*(p+m) : s*(p+m)+s]
		bIm := srcIm[s*(p+m) : s*(p+m)+s]
		cRe := srcRe[s*(p+2*m) : s*(p+2*m)+s]
		cIm := srcIm[s*(p+2*m) : s*(p+2*m)+s]
		dRe := srcRe[s*(p+3*m) : s*(p+3*m)+s]
		dIm := srcIm[s*(p+3*m) : s*(p+3*m)+s]
		y0Re := dstRe[s*4*p : s*4*p+s]
		y0Im := dstIm[s*4*p : s*4*p+s]
		y1Re := dstRe[s*(4*p+1) : s*(4*p+1)+s]
		y1Im := dstIm[s*(4*p+1) : s*(4*p+1)+s]
		y2Re := dstRe[s*(4*p+2) : s*(4*p+2)+s]
		y2Im := dstIm[s*(4*p+2) : s*(4*p+2)+s]
		y3Re := dstRe[s*(4*p+3) : s*(4*p+3)+s]
		y3Im := dstIm[s*(4*p+3) : s*(4*p+3)+s]
		for q := 0; q < s; q++ {
			ar, ai := aRe[q], aIm[q]
			br, bi := bRe[q], bIm[q]
			cr, ci := cRe[q], cIm[q]
			dr, di := dRe[q], dIm[q]
			apcR, apcI := ar+cr, ai+ci
			amcR, amcI := ar-cr, ai-ci
			bpdR, bpdI := br+dr, bi+di
			bmdR, bmdI := br-dr, bi-di
			// jbmd = (jim*i)*(bmd): re = -jim*bmdI, im = jim*bmdR
			jbR, jbI := -jim*bmdI, jim*bmdR
			y0Re[q] = apcR + bpdR
			y0Im[q] = apcI + bpdI
			t1R, t1I := amcR+jbR, amcI+jbI
			y1Re[q] = t1R*w1r - t1I*w1i
			y1Im[q] = t1R*w1i + t1I*w1r
			t2R, t2I := apcR-bpdR, apcI-bpdI
			y2Re[q] = t2R*w2r - t2I*w2i
			y2Im[q] = t2R*w2i + t2I*w2r
			t3R, t3I := amcR-jbR, amcI-jbI
			y3Re[q] = t3R*w3r - t3I*w3i
			y3Im[q] = t3R*w3i + t3I*w3r
		}
	}
}

// SplitRadix8Step performs one Stockham radix-8 stage in split format.
// sign must match the direction used to build tw. Same butterfly as
// Radix8Step (even/odd split into two DFT₄s) over separate re/im planes.
func SplitRadix8StepGeneric(dstRe, dstIm, srcRe, srcIm []float64, m, s, sign int, tw SplitTwiddles) {
	jim := 1.0
	if sign == Forward {
		jim = -1.0
	}
	h := sqrt1_2
	for p := 0; p < m; p++ {
		w1r, w1i := tw.W1Re[p], tw.W1Im[p]
		w2r, w2i := tw.W2Re[p], tw.W2Im[p]
		w3r, w3i := tw.W3Re[p], tw.W3Im[p]
		w4r, w4i := tw.W4Re[p], tw.W4Im[p]
		w5r, w5i := tw.W5Re[p], tw.W5Im[p]
		w6r, w6i := tw.W6Re[p], tw.W6Im[p]
		w7r, w7i := tw.W7Re[p], tw.W7Im[p]
		x0Re := srcRe[s*p : s*p+s]
		x0Im := srcIm[s*p : s*p+s]
		x1Re := srcRe[s*(p+m) : s*(p+m)+s]
		x1Im := srcIm[s*(p+m) : s*(p+m)+s]
		x2Re := srcRe[s*(p+2*m) : s*(p+2*m)+s]
		x2Im := srcIm[s*(p+2*m) : s*(p+2*m)+s]
		x3Re := srcRe[s*(p+3*m) : s*(p+3*m)+s]
		x3Im := srcIm[s*(p+3*m) : s*(p+3*m)+s]
		x4Re := srcRe[s*(p+4*m) : s*(p+4*m)+s]
		x4Im := srcIm[s*(p+4*m) : s*(p+4*m)+s]
		x5Re := srcRe[s*(p+5*m) : s*(p+5*m)+s]
		x5Im := srcIm[s*(p+5*m) : s*(p+5*m)+s]
		x6Re := srcRe[s*(p+6*m) : s*(p+6*m)+s]
		x6Im := srcIm[s*(p+6*m) : s*(p+6*m)+s]
		x7Re := srcRe[s*(p+7*m) : s*(p+7*m)+s]
		x7Im := srcIm[s*(p+7*m) : s*(p+7*m)+s]
		y0Re := dstRe[s*8*p : s*8*p+s]
		y0Im := dstIm[s*8*p : s*8*p+s]
		y1Re := dstRe[s*(8*p+1) : s*(8*p+1)+s]
		y1Im := dstIm[s*(8*p+1) : s*(8*p+1)+s]
		y2Re := dstRe[s*(8*p+2) : s*(8*p+2)+s]
		y2Im := dstIm[s*(8*p+2) : s*(8*p+2)+s]
		y3Re := dstRe[s*(8*p+3) : s*(8*p+3)+s]
		y3Im := dstIm[s*(8*p+3) : s*(8*p+3)+s]
		y4Re := dstRe[s*(8*p+4) : s*(8*p+4)+s]
		y4Im := dstIm[s*(8*p+4) : s*(8*p+4)+s]
		y5Re := dstRe[s*(8*p+5) : s*(8*p+5)+s]
		y5Im := dstIm[s*(8*p+5) : s*(8*p+5)+s]
		y6Re := dstRe[s*(8*p+6) : s*(8*p+6)+s]
		y6Im := dstIm[s*(8*p+6) : s*(8*p+6)+s]
		y7Re := dstRe[s*(8*p+7) : s*(8*p+7)+s]
		y7Im := dstIm[s*(8*p+7) : s*(8*p+7)+s]
		for q := 0; q < s; q++ {
			a0r, a0i := x0Re[q], x0Im[q]
			a1r, a1i := x1Re[q], x1Im[q]
			a2r, a2i := x2Re[q], x2Im[q]
			a3r, a3i := x3Re[q], x3Im[q]
			a4r, a4i := x4Re[q], x4Im[q]
			a5r, a5i := x5Re[q], x5Im[q]
			a6r, a6i := x6Re[q], x6Im[q]
			a7r, a7i := x7Re[q], x7Im[q]
			e0r, e0i := a0r+a4r, a0i+a4i
			e1r, e1i := a1r+a5r, a1i+a5i
			e2r, e2i := a2r+a6r, a2i+a6i
			e3r, e3i := a3r+a7r, a3i+a7i
			o0r, o0i := a0r-a4r, a0i-a4i
			t1r, t1i := a1r-a5r, a1i-a5i
			t2r, t2i := a2r-a6r, a2i-a6i
			t3r, t3i := a3r-a7r, a3i-a7i
			o1r, o1i := h*(t1r-jim*t1i), h*(t1i+jim*t1r)
			o2r, o2i := -jim*t2i, jim*t2r
			o3r, o3i := -h*(t3r+jim*t3i), h*(jim*t3r-t3i)
			epcR, epcI := e0r+e2r, e0i+e2i
			emcR, emcI := e0r-e2r, e0i-e2i
			fpdR, fpdI := e1r+e3r, e1i+e3i
			fmdR, fmdI := e1r-e3r, e1i-e3i
			jfR, jfI := -jim*fmdI, jim*fmdR
			opcR, opcI := o0r+o2r, o0i+o2i
			omcR, omcI := o0r-o2r, o0i-o2i
			qpdR, qpdI := o1r+o3r, o1i+o3i
			qmdR, qmdI := o1r-o3r, o1i-o3i
			jqR, jqI := -jim*qmdI, jim*qmdR
			y0Re[q] = epcR + fpdR
			y0Im[q] = epcI + fpdI
			t1R, t1I := opcR+qpdR, opcI+qpdI
			y1Re[q] = t1R*w1r - t1I*w1i
			y1Im[q] = t1R*w1i + t1I*w1r
			t2R, t2I := emcR+jfR, emcI+jfI
			y2Re[q] = t2R*w2r - t2I*w2i
			y2Im[q] = t2R*w2i + t2I*w2r
			t3R, t3I := omcR+jqR, omcI+jqI
			y3Re[q] = t3R*w3r - t3I*w3i
			y3Im[q] = t3R*w3i + t3I*w3r
			t4R, t4I := epcR-fpdR, epcI-fpdI
			y4Re[q] = t4R*w4r - t4I*w4i
			y4Im[q] = t4R*w4i + t4I*w4r
			t5R, t5I := opcR-qpdR, opcI-qpdI
			y5Re[q] = t5R*w5r - t5I*w5i
			y5Im[q] = t5R*w5i + t5I*w5r
			t6R, t6I := emcR-jfR, emcI-jfI
			y6Re[q] = t6R*w6r - t6I*w6i
			y6Im[q] = t6R*w6i + t6I*w6r
			t7R, t7I := omcR-jqR, omcI-jqI
			y7Re[q] = t7R*w7r - t7I*w7i
			y7Im[q] = t7R*w7i + t7I*w7r
		}
	}
}

// SplitRadix16Step performs one fused radix-16 Stockham stage (two radix-4
// rank stages in registers, see Radix16Step) in split format. sign must
// match the direction used to build tw.
func SplitRadix16StepGeneric(dstRe, dstIm, srcRe, srcIm []float64, m, s, sign int, tw SplitTwiddles) {
	jim := 1.0
	if sign == Forward {
		jim = -1.0
	}
	h := sqrt1_2
	ws := tw.legs()
	var uR, uI [16]float64
	rot := func(idx int, a, b float64) {
		vr, vi := uR[idx], uI[idx]
		uR[idx] = a*vr - jim*b*vi
		uI[idx] = a*vi + jim*b*vr
	}
	for p := 0; p < m; p++ {
		for q := 0; q < s; q++ {
			// Pass A: DFT₄ over kA within each residue kB.
			step := s * 4 * m
			for kB := 0; kB < 4; kB++ {
				o := s*(p+kB*m) + q
				ar, ai := srcRe[o], srcIm[o]
				br, bi := srcRe[o+step], srcIm[o+step]
				cr, ci := srcRe[o+2*step], srcIm[o+2*step]
				dr, di := srcRe[o+3*step], srcIm[o+3*step]
				apcR, apcI := ar+cr, ai+ci
				amcR, amcI := ar-cr, ai-ci
				bpdR, bpdI := br+dr, bi+di
				bmdR, bmdI := br-dr, bi-di
				jbR, jbI := -jim*bmdI, jim*bmdR
				uR[kB], uI[kB] = apcR+bpdR, apcI+bpdI
				uR[4+kB], uI[4+kB] = amcR+jbR, amcI+jbI
				uR[8+kB], uI[8+kB] = apcR-bpdR, apcI-bpdI
				uR[12+kB], uI[12+kB] = amcR-jbR, amcI-jbI
			}
			// Inter-rank rotations u[4·jA+kB] ·= ω̂₁₆^{jA·kB}.
			rot(4+1, cosPi8, sinPi8)
			rot(4+2, h, h)
			rot(4+3, sinPi8, cosPi8)
			rot(8+1, h, h)
			rot(8+2, 0, 1)
			rot(8+3, -h, h)
			rot(12+1, sinPi8, cosPi8)
			rot(12+2, -h, h)
			rot(12+3, -cosPi8, -sinPi8)
			// Pass B: DFT₄ over kB per jA; slot r = 4·jB + jA gets leg W_r.
			for jA := 0; jA < 4; jA++ {
				ar, ai := uR[4*jA], uI[4*jA]
				br, bi := uR[4*jA+1], uI[4*jA+1]
				cr, ci := uR[4*jA+2], uI[4*jA+2]
				dr, di := uR[4*jA+3], uI[4*jA+3]
				apcR, apcI := ar+cr, ai+ci
				amcR, amcI := ar-cr, ai-ci
				bpdR, bpdI := br+dr, bi+di
				bmdR, bmdI := br-dr, bi-di
				jbR, jbI := -jim*bmdI, jim*bmdR
				o := s*16*p + q
				store := func(r int, tR, tI float64) {
					if r == 0 {
						dstRe[o], dstIm[o] = tR, tI
						return
					}
					wr, wi := ws[r][0][p], ws[r][1][p]
					dstRe[o+s*r] = tR*wr - tI*wi
					dstIm[o+s*r] = tR*wi + tI*wr
				}
				store(jA, apcR+bpdR, apcI+bpdI)
				store(4+jA, amcR+jbR, amcI+jbI)
				store(8+jA, apcR-bpdR, apcI-bpdI)
				store(12+jA, amcR-jbR, amcI-jbI)
			}
		}
	}
}
