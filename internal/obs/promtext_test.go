package obs

import (
	"math"
	"strings"
	"testing"
)

func TestParseBasicExposition(t *testing.T) {
	in := `# HELP fft_requests_total Requests by result.
# TYPE fft_requests_total counter
fft_requests_total{result="completed"} 42
fft_requests_total{result="failed"} 0
# free-form comment, ignored
fft_queue_depth 3
fft_ratio{a="x",b="y"} 0.25
fft_with_ts 7 1700000000000
`
	samples, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples: %+v", len(samples), samples)
	}
	if samples[0].Name != "fft_requests_total" || samples[0].Labels["result"] != "completed" || samples[0].Value != 42 {
		t.Fatalf("sample 0 = %+v", samples[0])
	}
	if samples[2].Name != "fft_queue_depth" || samples[2].Labels != nil || samples[2].Value != 3 {
		t.Fatalf("sample 2 = %+v", samples[2])
	}
	if len(samples[3].Labels) != 2 {
		t.Fatalf("sample 3 labels = %+v", samples[3].Labels)
	}
	if samples[4].Value != 7 {
		t.Fatalf("timestamped sample = %+v", samples[4])
	}
}

func TestParseEscapedLabelValues(t *testing.T) {
	in := `m{plan="a\"b\\c\nd"} 1` + "\n"
	samples, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := samples[0].Labels["plan"], "a\"b\\c\nd"; got != want {
		t.Fatalf("unescaped value = %q, want %q", got, want)
	}
}

func TestParseSpecialFloatValues(t *testing.T) {
	in := "a NaN\nb +Inf\nc -Inf\nd 1.5e-3\n"
	samples, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(samples[0].Value) || !math.IsInf(samples[1].Value, 1) || !math.IsInf(samples[2].Value, -1) {
		t.Fatalf("special floats = %+v", samples)
	}
	if samples[3].Value != 1.5e-3 {
		t.Fatalf("scientific = %v", samples[3].Value)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad metric name":    "9metric 1\n",
		"bad label name":     `m{9l="x"} 1` + "\n",
		"colon label":        `m{a:b="x"} 1` + "\n",
		"unquoted value":     `m{l=x} 1` + "\n",
		"unterminated value": `m{l="x} 1` + "\n",
		"bad escape":         `m{l="\q"} 1` + "\n",
		"duplicate label":    `m{l="a",l="b"} 1` + "\n",
		"missing value":      "m\n",
		"bad value":          "m pizza\n",
		"bad timestamp":      "m 1 soon\n",
		"unknown TYPE":       "# TYPE m flute\nm 1\n",
		"malformed TYPE":     "# TYPE m\nm 1\n",
		"bad HELP name":      "# HELP 9m text\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error: %q", name, in)
		}
	}
}

func TestValidateExpositionRejectsDuplicateSeries(t *testing.T) {
	in := `m{a="1",b="2"} 1
m{b="2",a="1"} 2
`
	if _, err := ValidateExposition(strings.NewReader(in)); err == nil {
		t.Fatal("duplicate series (label order permuted) accepted")
	}
	ok := `m{a="1"} 1
m{a="2"} 2
m 3
`
	if _, err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("distinct series rejected: %v", err)
	}
}

func TestSampleSeriesCanonical(t *testing.T) {
	a := Sample{Name: "m", Labels: map[string]string{"x": "1", "y": "2"}}
	b := Sample{Name: "m", Labels: map[string]string{"y": "2", "x": "1"}}
	if a.Series() != b.Series() {
		t.Fatalf("series not canonical: %q vs %q", a.Series(), b.Series())
	}
	if got := (Sample{Name: "m"}).Series(); got != "m" {
		t.Fatalf("unlabeled series = %q", got)
	}
}
