package spl

import (
	"testing"
	"testing/quick"
)

// Property: L_m^{mn} · L_n^{mn} = I for arbitrary factorizations.
func TestQuickLInverse(t *testing.T) {
	f := func(rawM, rawN uint8) bool {
		m := int(rawM)%10 + 1
		n := int(rawN)%10 + 1
		return DenseEqual(Compose(L(m*n, m), L(m*n, n)), I(m*n), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: three rotations compose to the identity for arbitrary cubes.
func TestQuickRotationChain(t *testing.T) {
	f := func(rawK, rawN, rawM uint8) bool {
		k := int(rawK)%6 + 1
		n := int(rawN)%6 + 1
		m := int(rawM)%6 + 1
		return DenseEqual(Compose(K(n, m, k), K(m, k, n), K(k, n, m)), I(k*n*m), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Cooley–Tukey factorization equals the dense DFT for any
// small factor pair.
func TestQuickCooleyTukey(t *testing.T) {
	f := func(rawM, rawN uint8) bool {
		m := int(rawM)%6 + 2
		n := int(rawN)%6 + 2
		return DenseEqual(CooleyTukey(m, n), DFT(m*n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Simplify never changes semantics on random composites built
// from the constructors.
func TestQuickSimplifySafe(t *testing.T) {
	f := func(rawA, rawB uint8) bool {
		m := int(rawA)%4 + 2
		n := int(rawB)%4 + 2
		forms := []Formula{
			Compose(L(m*n, m), Kron(I(m), I(n)), L(m*n, n)),
			Compose(I(m*n), Kron(I(m), DFT(n)), I(m*n)),
			Compose(K(m, n, 2), K(2, m, n)),
			Kron(Kron(I(2), I(m)), I(n)),
		}
		for _, g := range forms {
			if !DenseEqual(g, Simplify(g), 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Kronecker mixed-product identity
// (A⊗B)(C⊗D) = (AC)⊗(BD) for diagonal/permutation operands.
func TestQuickMixedProduct(t *testing.T) {
	f := func(rawM, rawN uint8) bool {
		m := int(rawM)%5 + 2
		n := int(rawN)%5 + 2
		a, c := DFT(m), L(m, 1) // L(m,1) = I as permutation node
		b, d := L(n, n), DFT(n)
		lhs := Compose(Kron(a, b), Kron(c, d))
		rhs := Kron(Compose(a, c), Compose(b, d))
		return DenseEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
