package rfft

import (
	"fmt"

	"repro/internal/fft1d"
)

// Plan3D computes real-input 3D DFTs on k×n×m row-major grids (m even),
// producing the half spectrum k×n×(m/2+1): the x-dimension stores only the
// non-redundant Hermitian coefficients, so the transform moves roughly half
// the bytes of a padded complex transform — the bandwidth saving that makes
// r2c the format of choice for the paper's motivating workloads.
type Plan3D struct {
	k, n, m int
	mc      int // m/2 + 1
	row     *Plan1D
	planN   *fft1d.Plan
	planK   *fft1d.Plan
}

// NewPlan3D builds a 3D real-input plan; m must be even.
func NewPlan3D(k, n, m int) (*Plan3D, error) {
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("rfft: invalid size %dx%dx%d", k, n, m)
	}
	row, err := NewPlan1D(m)
	if err != nil {
		return nil, err
	}
	return &Plan3D{
		k: k, n: n, m: m, mc: m/2 + 1,
		row: row, planN: fft1d.NewPlan(n), planK: fft1d.NewPlan(k),
	}, nil
}

// Dims returns (k, n, m).
func (p *Plan3D) Dims() (int, int, int) { return p.k, p.n, p.m }

// SpectrumLen returns k·n·(m/2+1).
func (p *Plan3D) SpectrumLen() int { return p.k * p.n * p.mc }

// RealLen returns k·n·m.
func (p *Plan3D) RealLen() int { return p.k * p.n * p.m }

// Forward computes the unnormalized half spectrum. dst must have length
// SpectrumLen(), src RealLen().
func (p *Plan3D) Forward(dst []complex128, src []float64) error {
	if len(dst) != p.SpectrumLen() || len(src) != p.RealLen() {
		return fmt.Errorf("rfft: Forward lengths dst=%d src=%d, want %d/%d",
			len(dst), len(src), p.SpectrumLen(), p.RealLen())
	}
	k, n, m, mc := p.k, p.n, p.m, p.mc
	// Stage 1: packed r2c along every x row.
	for r := 0; r < k*n; r++ {
		if err := p.row.Forward(dst[r*mc:(r+1)*mc], src[r*m:(r+1)*m]); err != nil {
			return err
		}
	}
	// Stage 2: complex DFT_n along y with mc lanes, per z slab.
	for z := 0; z < k; z++ {
		p.planN.InPlaceLanes(dst[z*n*mc:(z+1)*n*mc], mc, fft1d.Forward)
	}
	// Stage 3: complex DFT_k along z with n·mc lanes.
	p.planK.InPlaceLanes(dst, n*mc, fft1d.Forward)
	return nil
}

// Inverse computes the normalized real inverse: Inverse ∘ Forward is the
// identity. src is modified in place (it is the natural scratch; clone it
// first if you need it preserved).
func (p *Plan3D) Inverse(dst []float64, src []complex128) error {
	if len(dst) != p.RealLen() || len(src) != p.SpectrumLen() {
		return fmt.Errorf("rfft: Inverse lengths dst=%d src=%d, want %d/%d",
			len(dst), len(src), p.RealLen(), p.SpectrumLen())
	}
	k, n, m, mc := p.k, p.n, p.m, p.mc
	// Undo stage 3 and 2 (unnormalized inverses, scaled at the end
	// through the 1D inverse's 1/m and explicit 1/(k·n)).
	p.planK.InPlaceLanes(src, n*mc, fft1d.Inverse)
	for z := 0; z < k; z++ {
		p.planN.InPlaceLanes(src[z*n*mc:(z+1)*n*mc], mc, fft1d.Inverse)
	}
	inv := complex(1/float64(k*n), 0)
	for i := range src {
		src[i] *= inv
	}
	for r := 0; r < k*n; r++ {
		if err := p.row.Inverse(dst[r*m:(r+1)*m], src[r*mc:(r+1)*mc]); err != nil {
			return err
		}
	}
	return nil
}
