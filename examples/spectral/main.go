// Spectral: 2D low-pass filtering of a noisy synthetic image via the 2D
// FFT — the 2D transform path (Fig. 9's subject) exercised end to end.
//
// The image is a sum of two low-frequency sinusoidal gratings plus
// high-frequency noise; filtering zeroes every Fourier mode above a cutoff
// radius and must recover the gratings almost exactly.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	const n, m = 256, 256
	plan, err := repro.NewFFT2D(n, m, repro.WithBufferElems(1<<12))
	if err != nil {
		log.Fatal(err)
	}

	// Clean signal: two gratings at wavenumbers (2,3) and (5,1).
	clean := make([]float64, n*m)
	img := make([]complex128, n*m)
	rng := rand.New(rand.NewSource(7))
	for y := 0; y < n; y++ {
		for x := 0; x < m; x++ {
			fy, fx := float64(y)/n, float64(x)/m
			v := math.Sin(2*math.Pi*(2*fy+3*fx)) + 0.5*math.Cos(2*math.Pi*(5*fy+1*fx))
			clean[y*m+x] = v
			// Noise concentrated at high frequencies: random speckle.
			img[y*m+x] = complex(v+0.8*(rng.Float64()*2-1), 0)
		}
	}

	spec := make([]complex128, n*m)
	if err := plan.Forward(spec, img); err != nil {
		log.Fatal(err)
	}

	// Zero every mode with radius > cutoff (in signed wavenumbers).
	const cutoff = 8.0
	kept := 0
	for y := 0; y < n; y++ {
		for x := 0; x < m; x++ {
			ky, kx := wave(y, n), wave(x, m)
			if math.Hypot(ky, kx) > cutoff {
				spec[y*m+x] = 0
			} else {
				kept++
			}
		}
	}

	out := make([]complex128, n*m)
	if err := plan.Inverse(out, spec); err != nil {
		log.Fatal(err)
	}

	// The filtered image should be much closer to the clean signal than
	// the noisy input was.
	rmsNoisy := rms(img, clean, m)
	rmsFiltered := rms(out, clean, m)
	fmt.Printf("2D spectral low-pass on %d×%d image (kept %d/%d modes)\n", n, m, kept, n*m)
	fmt.Printf("RMS error vs clean: noisy %.4f → filtered %.4f (%.1fx reduction)\n",
		rmsNoisy, rmsFiltered, rmsNoisy/rmsFiltered)
	if rmsFiltered > rmsNoisy/3 {
		log.Fatal("filtering did not denoise")
	}
	fmt.Println("OK")
}

func rms(got []complex128, clean []float64, m int) float64 {
	var s float64
	for i := range got {
		d := real(got[i]) - clean[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(got)))
}

func wave(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}
