package fft1d

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cvec"
)

// Property: Parseval holds for arbitrary sizes 1..200.
func TestQuickParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(raw uint16) bool {
		n := int(raw)%200 + 1
		p := NewPlan(n)
		x := cvec.Random(rng, n)
		y := make([]complex128, n)
		p.Transform(y, x, Forward)
		ex := cvec.Vec(x).L2()
		ey := cvec.Vec(y).L2()
		ratio := ey * ey / (ex*ex*float64(n) + 1e-300)
		return ratio > 0.999999 && ratio < 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the circular convolution theorem — DFT(x ⊛ y) = DFT(x)·DFT(y)
// elementwise — holds for arbitrary sizes.
func TestQuickConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	f := func(raw uint8) bool {
		n := int(raw)%60 + 2
		p := NewPlan(n)
		x := cvec.Random(rng, n)
		y := cvec.Random(rng, n)
		// Direct circular convolution.
		conv := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += x[j] * y[(i-j+n)%n]
			}
			conv[i] = s
		}
		fc := make([]complex128, n)
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		p.Transform(fc, conv, Forward)
		p.Transform(fx, x, Forward)
		p.Transform(fy, y, Forward)
		for i := range fc {
			fx[i] *= fy[i]
		}
		return cvec.MaxDiff(cvec.Vec(fc), cvec.Vec(fx)) < 1e-7*float64(n*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Forward then Inverse (scaled) is the identity for arbitrary
// sizes and lane counts.
func TestQuickRoundTripLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	f := func(rawN, rawMu uint8) bool {
		n := int(rawN)%100 + 1
		mu := int(rawMu)%4 + 1
		p := NewPlan(n)
		x := cvec.Random(rng, n*mu)
		y := make([]complex128, n*mu)
		z := make([]complex128, n*mu)
		p.Lanes(y, x, mu, Forward)
		p.Lanes(z, y, mu, Inverse)
		Scale(z, 1/float64(n))
		return cvec.MaxDiff(cvec.Vec(z), cvec.Vec(x)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: DFT of the conjugate-reversed input is the conjugate of the
// DFT (x*[-n] ↔ X*): transforms respect the symmetry group.
func TestQuickConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	f := func(raw uint8) bool {
		n := int(raw)%80 + 2
		p := NewPlan(n)
		x := cvec.Random(rng, n)
		xr := make([]complex128, n)
		for i := range xr {
			c := x[(n-i)%n]
			xr[i] = complex(real(c), -imag(c))
		}
		fx := make([]complex128, n)
		fr := make([]complex128, n)
		p.Transform(fx, x, Forward)
		p.Transform(fr, xr, Forward)
		for i := range fx {
			fx[i] = complex(real(fx[i]), -imag(fx[i]))
		}
		return cvec.MaxDiff(cvec.Vec(fr), cvec.Vec(fx)) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
