package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure1Output(t *testing.T) {
	var b bytes.Buffer
	Figure1(&b)
	out := b.String()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "Kaby Lake") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "[9,9,9]") || !strings.Contains(out, "[10,10,10]") {
		t.Fatal("missing size rows")
	}
	if strings.Count(out, "\n") < 10 {
		t.Fatal("too few rows")
	}
	if !strings.Contains(out, "DoubleBuffering+Spiral") {
		t.Fatal("missing our column")
	}
}

func TestFigure9Output(t *testing.T) {
	var b bytes.Buffer
	Figure9(&b)
	if !strings.Contains(b.String(), "2D FFT") || !strings.Contains(b.String(), "[10,16]") {
		t.Fatalf("figure 9 output wrong:\n%s", b.String())
	}
}

func TestFigure10Output(t *testing.T) {
	var b bytes.Buffer
	Figure10(&b)
	out := b.String()
	if !strings.Contains(out, "two-socket") || !strings.Contains(out, "[11,11,11]") {
		t.Fatalf("figure 10 output wrong:\n%s", out)
	}
	if !strings.Contains(out, "speedup vs MKL") {
		t.Fatal("missing speedup column")
	}
}

func TestFigure11Outputs(t *testing.T) {
	var a, bb, c, d bytes.Buffer
	Figure11a(&a)
	Figure11b(&bb)
	Figure11c(&c)
	Figure11d(&d)
	if !strings.Contains(a.String(), "4770K") {
		t.Error("11a missing machine")
	}
	if !strings.Contains(bb.String(), "FX-8350") {
		t.Error("11b missing machine")
	}
	if !strings.Contains(c.String(), "1→2 sockets") || !strings.Contains(c.String(), "2667") {
		t.Error("11c wrong")
	}
	if !strings.Contains(d.String(), "Interlagos") {
		t.Error("11d wrong")
	}
}

func TestAllPrintsEverything(t *testing.T) {
	var b bytes.Buffer
	All(&b)
	for _, want := range []string{"Fig. 1", "Fig. 9", "Fig. 10", "Fig. 11a", "Fig. 11b", "Fig. 11c", "Fig. 11d"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("All output missing %q", want)
		}
	}
}

func TestSizeLabels(t *testing.T) {
	if got := sizeLabel3([3]int{512, 1024, 512}); got != "[9,10,9]" {
		t.Fatalf("sizeLabel3 = %q", got)
	}
	if log2i(1) != 0 || log2i(2) != 1 || log2i(1024) != 10 {
		t.Fatal("log2i wrong")
	}
}

func TestMeasured3DRuns(t *testing.T) {
	var b bytes.Buffer
	err := Measured3D(&b, MeasuredConfig{
		Sizes3D:   [][3]int{{16, 16, 16}, {32, 16, 16}},
		Reps:      1,
		HostBWGBs: 10, // skip the STREAM run in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "16x16x16") || !strings.Contains(out, "doublebuf") {
		t.Fatalf("measured output wrong:\n%s", out)
	}
}

func TestMeasured2DRuns(t *testing.T) {
	var b bytes.Buffer
	err := Measured2D(&b, MeasuredConfig{
		Sizes2D:   [][2]int{{32, 32}, {64, 32}},
		Reps:      1,
		HostBWGBs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "32x32") {
		t.Fatalf("measured 2D output wrong:\n%s", b.String())
	}
}
