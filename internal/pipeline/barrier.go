package pipeline

import "sync"

// barrier is a reusable cyclic barrier for a fixed party count, the Go
// analogue of the paper's #pragma omp barrier. It can be aborted: a worker
// that panics poisons the barrier so the remaining workers unblock and bail
// out instead of deadlocking.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
	aborted bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all parties have called wait for the current
// generation. It reports false if the barrier was aborted (callers must
// stop participating).
func (b *barrier) wait() bool {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		return false
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	ok := !b.aborted
	b.mu.Unlock()
	return ok
}

// abort poisons the barrier, waking every waiter with a failure result.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
