// Package flightrec is a bounded in-memory flight recorder for the serving
// layer: the last N requests with their trace IDs, shapes, timings, and
// typed errors, served as JSON from /debug/flightrec. When a node
// misbehaves in a fleet, the recorder answers "what was it doing just
// now?" without scraping logs — the black-box counterpart to the live
// metrics exposition.
package flightrec

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Entry is one recorded request.
type Entry struct {
	Time     time.Time     `json:"time"`
	TraceID  string        `json:"trace_id,omitempty"`
	Kind     string        `json:"kind"` // complex | real | shard
	Dims     [3]int        `json:"dims"`
	Rank     int           `json:"rank"`
	Inverse  bool          `json:"inverse"`
	Duration time.Duration `json:"duration_ns"`
	Status   string        `json:"status"` // ok | error
	ErrKind  string        `json:"err_kind,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Recorder retains the most recent entries in a fixed ring. A nil
// *Recorder records nothing, so callers can leave it unconfigured.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
	head    int
	cap     int
	total   uint64
}

// New returns a recorder retaining up to capacity entries (minimum 1).
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{cap: capacity}
}

// Record appends one entry, evicting the oldest once full.
func (r *Recorder) Record(e Entry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.entries) == r.cap {
		r.entries[r.head] = e
		r.head = (r.head + 1) % r.cap
	} else {
		r.entries = append(r.entries, e)
	}
	r.total++
	r.mu.Unlock()
}

// Entries returns the retained entries, newest first.
func (r *Recorder) Entries() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.entries))
	// The ring holds oldest at head; walk backward from the newest.
	for i := len(r.entries) - 1; i >= 0; i-- {
		out = append(out, r.entries[(r.head+i)%len(r.entries)])
	}
	return out
}

// Total returns how many entries were ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ServeHTTP serves the retained entries as JSON: {"total": …, "capacity":
// …, "entries": [newest, …]}.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	capacity := 0
	if r != nil {
		capacity = r.cap
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Total    uint64  `json:"total"`
		Capacity int     `json:"capacity"`
		Entries  []Entry `json:"entries"`
	}{r.Total(), capacity, r.Entries()})
}
