package cli

import "testing"

func TestParseDims(t *testing.T) {
	good := map[string][]int{
		"512,512,512": {512, 512, 512},
		"1024, 2048":  {1024, 2048},
		"7":           {7},
	}
	for in, want := range good {
		got, err := ParseDims(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: got %v", in, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: got %v, want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"", "a,b", "0,4", "-1", "4,,4"} {
		if _, err := ParseDims(in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		3 << 20: "3.0 MiB",
		5 << 30: "5.0 GiB",
		1536:    "1.5 KiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
