package fft3d

import (
	"fmt"
	"sync"

	"repro/internal/fft1d"
	"repro/internal/numa"
	"repro/internal/pipeline"
)

// DistPlan is the paper's dual-socket (general multi-socket) 3D FFT
// (§IV-B): a slab-pencil split in which every socket owns a contiguous
// z-slab, the first stage reads and writes entirely within its NUMA domain,
// and the stage-2 and stage-3 rotations implement the Table III write
// matrices W², W³ whose stores cross the QPI/HT link for the (sk-1)/sk
// fraction of the data owned by other sockets (Fig. 8).
//
// Distributed data views (sk = sockets, ksl = k/sk, mb = m/μ):
//
//	A: k×n×m cube, z-partitioned; socket s owns z ∈ [s·ksl, (s+1)·ksl).
//	B: per-socket rotated sub-cube mb × ksl × n × μ (blocks (xb, zl, y)).
//	C: (y,xb)-partitioned pillars: unit q = y·mb+xb holds k×μ contiguous;
//	   socket s owns q ∈ [s·n·mb/sk, (s+1)·n·mb/sk).
//
// Setting sockets = 1 reduces every write matrix to its single-socket form
// (Table III: "By setting the number of sockets equal to sk = 1, the
// implementation defaults to the single-socket implementation").
type DistPlan struct {
	k, n, m int
	sk      int
	opts    Options
	mb      int
	ksl     int // k/sk

	planM, planN, planK *fft1d.Plan

	sys  *numa.System
	bIm  *numa.Distributed // intermediate B
	cIm  *numa.Distributed // intermediate C
	bufs [][2][]complex128 // per-socket double buffers

	rows1, units2, units3 int

	// StageTraffic records, for the most recent Transform, the local and
	// cross-interconnect bytes written by each stage.
	StageTraffic [3]TrafficStat
}

// TrafficStat is one stage's write-traffic split.
type TrafficStat struct {
	LocalBytes int64
	CrossBytes int64
}

// NewDistPlan builds a multi-socket plan. Requirements: sk ≥ 1, sk | k,
// μ | m, sk | n·(m/μ) (so the stage-2/3 ownership ranges are uniform).
func NewDistPlan(k, n, m, sockets int, opts Options) (*DistPlan, error) {
	if k < 1 || n < 1 || m < 1 {
		return nil, fmt.Errorf("fft3d: invalid size %dx%dx%d", k, n, m)
	}
	if sockets < 1 {
		return nil, fmt.Errorf("fft3d: invalid socket count %d", sockets)
	}
	opts = opts.withDefaults()
	if m%opts.Mu != 0 {
		return nil, fmt.Errorf("fft3d: μ=%d does not divide m=%d", opts.Mu, m)
	}
	if k%sockets != 0 {
		return nil, fmt.Errorf("fft3d: sockets=%d does not divide k=%d", sockets, k)
	}
	mb := m / opts.Mu
	if (n*mb)%sockets != 0 {
		return nil, fmt.Errorf("fft3d: sockets=%d does not divide n·m/μ=%d", sockets, n*mb)
	}
	sys, err := numa.NewSystem(sockets)
	if err != nil {
		return nil, err
	}
	p := &DistPlan{
		k: k, n: n, m: m, sk: sockets, opts: opts, mb: mb, ksl: k / sockets,
		planM: fft1d.NewPlan(m), planN: fft1d.NewPlan(n), planK: fft1d.NewPlan(k),
		sys: sys,
	}
	total := k * n * m
	if p.bIm, err = sys.Alloc(total); err != nil {
		return nil, err
	}
	if p.cIm, err = sys.Alloc(total); err != nil {
		return nil, err
	}
	mu := opts.Mu
	p.rows1 = largestDivisorAtMost(p.ksl*n, maxInt(1, opts.BufferElems/m))
	p.units2 = largestDivisorAtMost(mb*p.ksl, maxInt(1, opts.BufferElems/(n*mu)))
	p.units3 = largestDivisorAtMost(n*mb/sockets, maxInt(1, opts.BufferElems/(k*mu)))
	b := maxInt(p.rows1*m, maxInt(p.units2*n*mu, p.units3*k*mu))
	p.bufs = make([][2][]complex128, sockets)
	for s := 0; s < sockets; s++ {
		p.bufs[s][0] = make([]complex128, b)
		p.bufs[s][1] = make([]complex128, b)
	}
	return p, nil
}

// System exposes the simulated NUMA system (for traffic inspection).
func (p *DistPlan) System() *numa.System { return p.sys }

// Sockets returns the socket count.
func (p *DistPlan) Sockets() int { return p.sk }

// Alloc allocates a z-partitioned data vector compatible with the plan.
func (p *DistPlan) Alloc() (*numa.Distributed, error) {
	return p.sys.Alloc(p.k * p.n * p.m)
}

// Transform computes dst = DFT_{k×n×m}(src) over the distributed slabs.
// dst and src must come from Alloc and must be distinct.
func (p *DistPlan) Transform(dst, src *numa.Distributed, sign int) error {
	if src.Len() != p.k*p.n*p.m || dst.Len() != src.Len() {
		return fmt.Errorf("fft3d: distributed size mismatch")
	}
	p.sys.ResetTraffic()

	// Each stage runs all sockets concurrently, then barriers before the
	// next stage (the cross-socket writes of stage i must land before
	// stage i+1 reads them).
	stages := []func(s int) error{
		func(s int) error { return p.stage1(s, src, sign) },
		func(s int) error { return p.stage2(s, sign) },
		func(s int) error { return p.stage3(s, dst, sign) },
	}
	var prevLocal, prevCross int64
	for st, stage := range stages {
		var wg sync.WaitGroup
		errs := make([]error, p.sk)
		for s := 0; s < p.sk; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				errs[s] = stage(s)
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		l, c := p.sys.LocalBytes(), p.sys.CrossBytes()
		p.StageTraffic[st] = TrafficStat{LocalBytes: l - prevLocal, CrossBytes: c - prevCross}
		prevLocal, prevCross = l, c
	}
	return nil
}

// stage1: local pencils + local rotation (W¹ = I_sk ⊗ K ⊗ I_μ · S).
func (p *DistPlan) stage1(s int, src *numa.Distributed, sign int) error {
	n, m, mu, mb, ksl := p.n, p.m, p.opts.Mu, p.mb, p.ksl
	rows := p.rows1
	b1 := rows * m
	local := src.Part(s)
	bPart := p.bIm.Part(s)
	partBase := s * p.bIm.PartLen()
	bufs := &p.bufs[s]

	cfg := pipeline.Config{
		Iters:          ksl * n / rows,
		DataWorkers:    p.opts.DataWorkers,
		ComputeWorkers: p.opts.ComputeWorkers,
	}
	h := pipeline.Hooks{
		Load: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.PartitionBlocks(rows, m, worker, workers)
			copy(bufs[buf][lo:hi], local[iter*b1+lo:iter*b1+hi])
		},
		Compute: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.Partition(rows, worker, workers)
			if lo < hi {
				p.planM.Batch(bufs[buf][lo*m:hi*m], hi-lo, sign)
			}
		},
		Store: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.Partition(rows, worker, workers)
			half := bufs[buf]
			for r := lo; r < hi; r++ {
				g := iter*rows + r // local pencil: zl·n + y
				zl, y := g/n, g%n
				row := half[r*m : (r+1)*m]
				for xb := 0; xb < mb; xb++ {
					off := partBase + ((xb*ksl+zl)*n+y)*mu
					p.bIm.WriteBlock(s, off, row[xb*mu:(xb+1)*mu])
				}
			}
			_ = bPart
		},
	}
	_, err := pipeline.Run(cfg, h)
	return err
}

// stage2: local y-pencils, then the W² redistribution: unit (xb, z) scatters
// its y-blocks to the sockets owning each (y, xb) pillar.
func (p *DistPlan) stage2(s int, sign int) error {
	k, n, mu, mb, ksl := p.k, p.n, p.opts.Mu, p.mb, p.ksl
	units := p.units2
	unitLen := n * mu
	b2 := units * unitLen
	local := p.bIm.Part(s)
	bufs := &p.bufs[s]

	cfg := pipeline.Config{
		Iters:          mb * ksl / units,
		DataWorkers:    p.opts.DataWorkers,
		ComputeWorkers: p.opts.ComputeWorkers,
	}
	h := pipeline.Hooks{
		Load: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.PartitionBlocks(units, unitLen, worker, workers)
			copy(bufs[buf][lo:hi], local[iter*b2+lo:iter*b2+hi])
		},
		Compute: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.Partition(units, worker, workers)
			for u := lo; u < hi; u++ {
				p.planN.InPlaceLanes(bufs[buf][u*unitLen:(u+1)*unitLen], mu, sign)
			}
		},
		Store: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.Partition(units, worker, workers)
			half := bufs[buf]
			for u := lo; u < hi; u++ {
				h2 := iter*units + u // local unit: xb·ksl + zl
				xb, zl := h2/ksl, h2%ksl
				z := s*ksl + zl
				unit := half[u*unitLen : (u+1)*unitLen]
				for y := 0; y < n; y++ {
					q := y*mb + xb
					off := (q*k + z) * mu
					p.cIm.WriteBlock(s, off, unit[y*mu:(y+1)*mu])
				}
			}
		},
	}
	_, err := pipeline.Run(cfg, h)
	return err
}

// stage3: local z-pillars, then the W³ redistribution back to z-slabs.
func (p *DistPlan) stage3(s int, dst *numa.Distributed, sign int) error {
	k, n, mu, mb := p.k, p.n, p.opts.Mu, p.mb
	units := p.units3
	unitLen := k * mu
	b3 := units * unitLen
	local := p.cIm.Part(s)
	qBase := s * (n * mb / p.sk) // first owned unit index
	bufs := &p.bufs[s]

	cfg := pipeline.Config{
		Iters:          n * mb / p.sk / units,
		DataWorkers:    p.opts.DataWorkers,
		ComputeWorkers: p.opts.ComputeWorkers,
	}
	h := pipeline.Hooks{
		Load: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.PartitionBlocks(units, unitLen, worker, workers)
			copy(bufs[buf][lo:hi], local[iter*b3+lo:iter*b3+hi])
		},
		Compute: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.Partition(units, worker, workers)
			for u := lo; u < hi; u++ {
				p.planK.InPlaceLanes(bufs[buf][u*unitLen:(u+1)*unitLen], mu, sign)
			}
		},
		Store: func(iter, buf, worker, workers int) {
			lo, hi := pipeline.Partition(units, worker, workers)
			half := bufs[buf]
			for u := lo; u < hi; u++ {
				q := qBase + iter*units + u // global unit: y·mb + xb
				y, xb := q/mb, q%mb
				unit := half[u*unitLen : (u+1)*unitLen]
				for z := 0; z < k; z++ {
					off := ((z*n+y)*mb + xb) * mu
					dst.WriteBlock(s, off, unit[z*mu:(z+1)*mu])
				}
			}
		},
	}
	_, err := pipeline.Run(cfg, h)
	return err
}
