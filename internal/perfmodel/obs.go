package perfmodel

import "repro/internal/obs"

// StagePredictions converts the estimate's per-stage cost breakdown into
// the telemetry layer's prediction records, so a plan's collector can
// report measured/predicted divergence per stage.
func (e Estimate) StagePredictions() []obs.StagePrediction {
	out := make([]obs.StagePrediction, len(e.Stages))
	for i, s := range e.Stages {
		out[i] = obs.StagePrediction{
			DataSec:    s.DataSec,
			ComputeSec: s.ComputeSec,
			Sec:        s.Sec,
		}
	}
	return out
}
