package fft1d

import (
	"fmt"

	"repro/internal/cvec"
	"repro/internal/kernels"
)

// Split-format (block-interleaved) drivers. The paper's middle compute
// stages run in split format so the vector units consume whole cachelines of
// reals and imaginaries; these drivers provide that path for power-of-two
// sizes (the only sizes the paper evaluates). Non-power-of-two plans fall
// back to converting through the interleaved path.

// LanesSplit computes (DFT_n ⊗ I_mu) over split-format data out of place.
// All four slices must have length n·mu; dst and src must not overlap.
func (p *Plan) LanesSplit(dstRe, dstIm, srcRe, srcIm []float64, mu, sign int) {
	if mu < 1 {
		panic(fmt.Sprintf("fft1d: LanesSplit with mu=%d", mu))
	}
	want := p.n * mu
	if len(dstRe) != want || len(dstIm) != want || len(srcRe) != want || len(srcIm) != want {
		panic(fmt.Sprintf("fft1d: LanesSplit length mismatch, want %d", want))
	}
	switch p.kind {
	case kindPow2:
		p.pow2LanesSplit(dstRe, dstIm, srcRe, srcIm, mu, sign)
	default:
		// Fallback through interleaved form; only exercised for
		// non-power-of-two sizes, which are outside the paper's
		// evaluated set.
		src := cvec.Split{Re: srcRe, Im: srcIm}.ToVec()
		dst := make([]complex128, want)
		p.lanesInto(dst, src, mu, sign)
		cvec.Deinterleave(cvec.Split{Re: dstRe, Im: dstIm}, dst)
	}
}

func (p *Plan) pow2LanesSplit(dstRe, dstIm, srcRe, srcIm []float64, mu, sign int) {
	st := p.splitTwiddles(sign)
	t := len(st)
	total := p.n * mu
	scratchRe := make([]float64, total)
	scratchIm := make([]float64, total)

	curRe, curIm := srcRe, srcIm
	n1 := p.n
	s := mu
	for i, tw := range st {
		outRe, outIm := dstRe, dstIm
		if (t-1-i)%2 != 0 {
			outRe, outIm = scratchRe, scratchIm
		}
		r := p.radices[i]
		if r == 4 {
			kernels.SplitRadix4Step(outRe, outIm, curRe, curIm, n1/4, s, sign, tw)
		} else {
			kernels.SplitRadix2Step(outRe, outIm, curRe, curIm, n1/2, s, tw)
		}
		curRe, curIm = outRe, outIm
		n1 /= r
		s *= r
	}
}

// BatchSplit computes (I_count ⊗ DFT_n) in place over split-format data:
// count contiguous pencils of length n.
func (p *Plan) BatchSplit(re, im []float64, count, sign int) {
	if len(re) != count*p.n || len(im) != count*p.n {
		panic(fmt.Sprintf("fft1d: BatchSplit length %d/%d, want %d·%d",
			len(re), len(im), count, p.n))
	}
	tmpRe := make([]float64, p.n)
	tmpIm := make([]float64, p.n)
	for c := 0; c < count; c++ {
		lo, hi := c*p.n, (c+1)*p.n
		copy(tmpRe, re[lo:hi])
		copy(tmpIm, im[lo:hi])
		p.LanesSplit(re[lo:hi], im[lo:hi], tmpRe, tmpIm, 1, sign)
	}
}

// InPlaceLanesSplit computes (DFT_n ⊗ I_mu) in place over split data.
func (p *Plan) InPlaceLanesSplit(re, im []float64, mu, sign int) {
	want := p.n * mu
	if len(re) != want || len(im) != want {
		panic(fmt.Sprintf("fft1d: InPlaceLanesSplit length %d/%d, want %d",
			len(re), len(im), want))
	}
	tmpRe := make([]float64, want)
	tmpIm := make([]float64, want)
	copy(tmpRe, re)
	copy(tmpIm, im)
	p.LanesSplit(re, im, tmpRe, tmpIm, mu, sign)
}

// ScaleSplit multiplies split data elementwise by s.
func ScaleSplit(re, im []float64, s float64) {
	for i := range re {
		re[i] *= s
	}
	for i := range im {
		im[i] *= s
	}
}
