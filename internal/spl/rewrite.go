package spl

// Simplify applies the paper's §II-C identities as rewrite rules until a
// fixed point:
//
//	I_m ⊗ I_n            → I_{mn}
//	L_n^{mn} · L_m^{mn}  → I_{mn}
//	A · I                → A,  I · A → A
//	perm · perm          → fused perm
//	Compose flattening / singleton elimination
//
// Simplify never changes the denoted matrix; tests verify DenseEqual before
// and after.
func Simplify(f Formula) Formula {
	for {
		g, changed := simplifyOnce(f)
		if !changed {
			return g
		}
		f = g
	}
}

func simplifyOnce(f Formula) (Formula, bool) {
	switch n := f.(type) {
	case kron:
		a, ca := simplifyOnce(n.a)
		b, cb := simplifyOnce(n.b)
		if ia, okA := a.(identity); okA {
			if ib, okB := b.(identity); okB {
				return identity{ia.n * ib.n}, true
			}
		}
		if ca || cb {
			return kron{a, b}, true
		}
		return n, false
	case compose:
		changed := false
		fs := make([]Formula, 0, len(n.fs))
		for _, g := range n.fs {
			s, c := simplifyOnce(g)
			changed = changed || c
			if inner, ok := s.(compose); ok {
				fs = append(fs, inner.fs...)
				changed = true
			} else {
				fs = append(fs, s)
			}
		}
		// Drop square identities.
		kept := fs[:0]
		for _, g := range fs {
			if _, ok := g.(identity); ok && len(fs) > 1 {
				changed = true
				continue
			}
			kept = append(kept, g)
		}
		fs = kept
		// Fuse adjacent permutations (covers L·L = I and any
		// permutation chain).
		for i := 0; i+1 < len(fs); i++ {
			p1, ok1 := fs[i].(perm)
			p2, ok2 := fs[i+1].(perm)
			if !ok1 || !ok2 || len(p1.to) != len(p2.to) {
				continue
			}
			fused := fusePerm(p1, p2)
			nf := append(append([]Formula{}, fs[:i]...), fused)
			nf = append(nf, fs[i+2:]...)
			return Compose(nf...), true
		}
		if len(fs) == 0 {
			// Everything was identity; recover the size from the original.
			return identity{n.Rows()}, true
		}
		if len(fs) == 1 {
			return fs[0], true
		}
		if changed {
			return compose{fs}, true
		}
		return n, false
	default:
		return f, false
	}
}

// fusePerm composes two permutations p1·p2 (p2 applied first) into one node,
// returning an identity when the composition is trivial.
func fusePerm(p1, p2 perm) Formula {
	n := len(p1.to)
	to := make([]int, n)
	trivial := true
	for i := 0; i < n; i++ {
		to[i] = p1.to[p2.to[i]]
		if to[i] != i {
			trivial = false
		}
	}
	if trivial {
		return identity{n}
	}
	return perm{to, p1.name + "∘" + p2.name}
}

// CommuteKron returns the right-hand side of the paper's commutation
// identity A_m ⊗ B_n = L_m^{mn} (B_n ⊗ A_m) L_n^{mn} for square operands.
func CommuteKron(a, b Formula) Formula {
	m, n := a.Rows(), b.Rows()
	if a.Cols() != m || b.Cols() != n {
		panic("spl: CommuteKron requires square operands")
	}
	return Compose(L(m*n, m), Kron(b, a), L(m*n, n))
}
