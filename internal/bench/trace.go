package bench

import (
	"io"

	"repro/internal/fft1d"
	"repro/internal/fft3d"
	"repro/internal/trace"
)

// WriteTraceJSON runs a small traced double-buffered 3D transform and
// writes its schedule as Chrome trace_event JSON to w — load the file at
// ui.perfetto.dev (or chrome://tracing) to scrub through the pipeline:
// one lane per worker, loads and stores interleaving with computes on
// opposite buffer halves, the live version of the paper's Table II. When
// gantt is non-nil the ASCII timeline is rendered there as well, so the
// terminal view and the Perfetto view describe the same run.
func WriteTraceJSON(w, gantt io.Writer) error {
	tr := trace.New()
	p, err := fft3d.NewPlan(8, 8, 16, fft3d.Options{
		Strategy: fft3d.DoubleBuf, Mu: 4, BufferElems: 128,
		DataWorkers: 1, ComputeWorkers: 1, Tracer: tr,
	})
	if err != nil {
		return err
	}
	defer p.Close()
	src := make([]complex128, p.Len())
	for i := range src {
		src[i] = complex(float64(i%7), float64(i%5))
	}
	dst := make([]complex128, p.Len())
	if err := p.Transform(dst, src, fft1d.Forward); err != nil {
		return err
	}
	if gantt != nil {
		if err := tr.RenderTimeline(gantt); err != nil {
			return err
		}
	}
	return tr.WriteChromeTrace(w)
}
