// Command benchcmp diffs two fftbench -benchjson reports and exits
// non-zero when any benchmark regressed beyond the threshold — the CI
// gate that keeps the performance trajectory monotone.
//
// Usage:
//
//	benchcmp                          # newest two BENCH_*.json in .
//	benchcmp -dir results             # newest two in another directory
//	benchcmp old.json new.json        # explicit pair
//	benchcmp -threshold 0.05 ...      # tighten the gate to 5%
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "fractional slowdown that fails the gate (0.10 = 10%)")
	dir := flag.String("dir", ".", "directory scanned for BENCH_*.json when no files are given")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		var err error
		oldPath, newPath, err = bench.NewestTwo(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "benchcmp: give zero or exactly two report files")
		os.Exit(2)
	}

	regs, err := bench.CompareFiles(oldPath, newPath, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	fmt.Printf("benchcmp: %s → %s (threshold %.0f%%)\n", oldPath, newPath, 100**threshold)
	if len(regs) == 0 {
		fmt.Println("benchcmp: no regressions")
		return
	}
	for _, r := range regs {
		fmt.Println("benchcmp: REGRESSION", r)
	}
	os.Exit(1)
}
