// Package lru provides the bounded, reference-counted LRU cache behind
// every shared-plan surface in this repository: the serving layer's plan
// cache (internal/serve), the public shared-plan constructors, and the
// fft1d plan cache.
//
// Two properties distinguish it from a textbook LRU:
//
//   - Reference counting with deferred close. GetOrCreate hands out a
//     release function with every value; an entry evicted from the cache is
//     not closed until its last outstanding reference drains, so a plan can
//     be evicted while transforms are still in flight on it without
//     tearing its worker team down underneath them.
//
//   - Reentrant construction. The builder runs outside the cache lock
//     (concurrent requests for the same key wait on a ready channel instead
//     of duplicating the build), so a builder may itself call GetOrCreate —
//     the fft1d mixed-radix planner builds sub-plans recursively through
//     the same cache.
package lru

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Len       int
	Capacity  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type entry[K comparable, V any] struct {
	key     K
	val     V
	err     error
	refs    int
	evicted bool          // no longer in the map/list; close when refs drain
	ready   chan struct{} // closed once val/err is set
	elem    *list.Element // position in Cache.order while cached
}

// Cache is a bounded LRU keyed by K. All methods are safe for concurrent
// use. The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	onClose  func(K, V) // may be nil: evicted values are simply dropped
	entries  map[K]*entry[K, V]
	order    *list.List // front = most recently used

	hits, misses, evictions uint64
}

// New returns a cache holding at most capacity entries. onClose, if
// non-nil, is called (outside the cache lock) when an evicted entry's last
// reference drains — for plan caches this is where the executor's worker
// team is released.
func New[K comparable, V any](capacity int, onClose func(K, V)) *Cache[K, V] {
	if capacity < 1 {
		panic(fmt.Sprintf("lru: capacity must be ≥ 1, got %d", capacity))
	}
	return &Cache[K, V]{
		capacity: capacity,
		onClose:  onClose,
		entries:  make(map[K]*entry[K, V]),
		order:    list.New(),
	}
}

// GetOrCreate returns the cached value for key, building it with build on a
// miss, plus a release function the caller must invoke exactly once when
// done with the value. Concurrent callers of the same missing key share one
// build. A build error is returned to every waiter and the entry is
// dropped, so a later call retries.
func (c *Cache[K, V]) GetOrCreate(key K, build func() (V, error)) (V, func(), error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.order.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			var zero V
			c.release(e)
			return zero, nil, e.err
		}
		return e.val, func() { c.release(e) }, nil
	}
	e := &entry[K, V]{key: key, refs: 1, ready: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.misses++
	evicted := c.evictOverflowLocked(e)
	c.mu.Unlock()
	c.closeAll(evicted)

	v, err := build()

	c.mu.Lock()
	e.val, e.err = v, err
	close(e.ready)
	if err != nil && !e.evicted {
		// Drop the failed entry so the next caller retries the build.
		c.removeLocked(e)
	}
	c.mu.Unlock()
	if err != nil {
		var zero V
		c.release(e)
		return zero, nil, err
	}
	return v, func() { c.release(e) }, nil
}

// evictOverflowLocked evicts least-recently-used entries (never keep, the
// entry just inserted) until the cache fits its capacity, returning the
// entries whose close is due now (no outstanding references).
func (c *Cache[K, V]) evictOverflowLocked(keep *entry[K, V]) []*entry[K, V] {
	var due []*entry[K, V]
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		victim := back.Value.(*entry[K, V])
		if victim == keep {
			// Capacity 1 and the new entry is the only one; nothing to do.
			break
		}
		c.removeLocked(victim)
		c.evictions++
		if victim.refs == 0 {
			due = append(due, victim)
		}
	}
	return due
}

// removeLocked unlinks an entry from the map and recency list and marks it
// evicted; the caller decides whether its close is due.
func (c *Cache[K, V]) removeLocked(e *entry[K, V]) {
	delete(c.entries, e.key)
	c.order.Remove(e.elem)
	e.evicted = true
}

// release drops one reference; an evicted entry whose last reference drains
// is closed here.
func (c *Cache[K, V]) release(e *entry[K, V]) {
	c.mu.Lock()
	e.refs--
	due := e.evicted && e.refs == 0
	c.mu.Unlock()
	if due {
		c.closeEntry(e)
	}
}

func (c *Cache[K, V]) closeAll(es []*entry[K, V]) {
	for _, e := range es {
		c.closeEntry(e)
	}
}

// closeEntry runs onClose for a fully drained evicted entry. Entries that
// never built successfully have nothing to close.
func (c *Cache[K, V]) closeEntry(e *entry[K, V]) {
	<-e.ready // the builder may still be publishing val/err
	if e.err == nil && c.onClose != nil {
		c.onClose(e.key, e.val)
	}
}

// Purge evicts every entry. Entries without outstanding references are
// closed before Purge returns; the rest close as their references drain.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	var due []*entry[K, V]
	for e := c.order.Front(); e != nil; {
		next := e.Next()
		victim := e.Value.(*entry[K, V])
		c.removeLocked(victim)
		c.evictions++
		if victim.refs == 0 {
			due = append(due, victim)
		}
		e = next
	}
	c.mu.Unlock()
	c.closeAll(due)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Len:       c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
