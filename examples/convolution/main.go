// Convolution: a 3D periodic Poisson solver — the classic large-FFT
// workload the paper's introduction motivates (spectral PDE solvers touch
// datasets far larger than any cache, so FFT bandwidth efficiency is the
// whole game).
//
// We solve ∇²u = f on the periodic unit cube by diagonalizing the Laplacian
// in Fourier space: û(κ) = -f̂(κ)/|κ|², then verify against a manufactured
// solution.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	const N = 32 // N³ grid
	plan, err := repro.NewFFT3D(N, N, N, repro.WithBufferElems(1<<12))
	if err != nil {
		log.Fatal(err)
	}

	// Manufactured solution u*(x,y,z) = sin(2πx)·sin(4πy)·sin(6πz);
	// then f = ∇²u* = -(4π² + 16π² + 36π²)·u*.
	const (
		kx, ky, kz = 1, 2, 3
	)
	lambda := -4 * math.Pi * math.Pi * float64(kx*kx+ky*ky+kz*kz)
	uStar := make([]complex128, plan.Len())
	f := make([]complex128, plan.Len())
	h := 1.0 / N
	for z := 0; z < N; z++ {
		for y := 0; y < N; y++ {
			for x := 0; x < N; x++ {
				v := math.Sin(2*math.Pi*kx*float64(x)*h) *
					math.Sin(2*math.Pi*ky*float64(y)*h) *
					math.Sin(2*math.Pi*kz*float64(z)*h)
				i := (z*N+y)*N + x
				uStar[i] = complex(v, 0)
				f[i] = complex(lambda*v, 0)
			}
		}
	}

	// Forward transform the right-hand side.
	fHat := make([]complex128, plan.Len())
	if err := plan.Forward(fHat, f); err != nil {
		log.Fatal(err)
	}

	// Divide by the spectral Laplacian eigenvalues -(2π|κ|)². The κ=0
	// mode is the free constant of the periodic problem; pin it to zero.
	for z := 0; z < N; z++ {
		for y := 0; y < N; y++ {
			for x := 0; x < N; x++ {
				i := (z*N+y)*N + x
				k2 := wave(x, N)*wave(x, N) + wave(y, N)*wave(y, N) + wave(z, N)*wave(z, N)
				if k2 == 0 {
					fHat[i] = 0
					continue
				}
				fHat[i] /= complex(-4*math.Pi*math.Pi*k2, 0)
			}
		}
	}

	// Inverse transform to get the solution.
	u := make([]complex128, plan.Len())
	if err := plan.Inverse(u, fHat); err != nil {
		log.Fatal(err)
	}

	var maxErr, maxRef float64
	for i := range u {
		if d := math.Abs(real(u[i]) - real(uStar[i])); d > maxErr {
			maxErr = d
		}
		if a := math.Abs(real(uStar[i])); a > maxRef {
			maxRef = a
		}
	}
	fmt.Printf("periodic Poisson solve on %d³ grid\n", N)
	fmt.Printf("max |u - u*| = %.3e (relative %.3e)\n", maxErr, maxErr/maxRef)
	if maxErr/maxRef > 1e-8 {
		log.Fatal("spectral solve inaccurate")
	}
	fmt.Println("OK")
}

// wave maps a grid index to its signed integer wavenumber.
func wave(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}
