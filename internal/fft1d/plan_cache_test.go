package fft1d

import (
	"sync"
	"testing"
)

// TestPlanCacheBounded exercises the regression the LRU rewire fixes: the
// old sync.Map cache retained a plan (and its twiddle tables) for every size
// ever requested. The cache must stay within its capacity no matter how many
// distinct sizes pass through, while still deduplicating repeated requests.
func TestPlanCacheBounded(t *testing.T) {
	before := PlanCacheStats()

	// Repeated requests for one size share one plan.
	a := NewPlan(4096)
	b := NewPlan(4096)
	if a != b {
		t.Fatal("NewPlan(4096) twice returned distinct plans")
	}
	if s := PlanCacheStats(); s.Hits <= before.Hits {
		t.Errorf("repeated NewPlan did not register a cache hit: %+v", s)
	}

	// Sweep far more distinct sizes than the capacity, concurrently (the
	// public constructors are documented concurrency-safe). Composite sizes
	// plant recursive sub-plans through the same cache, which is the
	// worst case for growth.
	const sweep = 3 * planCacheCapacity
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < sweep; i++ {
				n := 9 + (i+g*sweep/4)%sweep
				p := NewPlan(n)
				if p.N() != n {
					t.Errorf("NewPlan(%d) returned plan of size %d", n, p.N())
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := PlanCacheStats()
	if s.Len > s.Capacity {
		t.Errorf("plan cache holds %d entries, capacity %d", s.Len, s.Capacity)
	}
	if s.Evictions == before.Evictions {
		t.Errorf("sweeping %d sizes evicted nothing (len %d, cap %d)", sweep, s.Len, s.Capacity)
	}

	// An evicted plan must remain usable by holders: plans are immutable
	// data, eviction only drops the cache's pointer.
	x := randVec(1, 4096)
	a.InPlace(x, Forward)
	a.InPlace(x, Inverse)
}
